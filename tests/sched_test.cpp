// Tests of the pluggable scheduler subsystem (tlb::sched): golden-schedule
// regressions proving the extraction of the §5.5 rule out of the runtime
// kept placements bit-identical, policy registry error paths, and the
// behaviour of the congestion / waittime feedback policies.
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/policies.hpp"
#include "core/runtime.hpp"
#include "dlb/report.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "graph/expander.hpp"
#include "hier/hier_scheduler.hpp"
#include "net/config.hpp"
#include "sched/ewma.hpp"
#include "sched/policies.hpp"
#include "sched/registry.hpp"

namespace {

using namespace tlb;

// Minimal sched::RuntimeView over a real (small) expander topology, for
// unit-testing policies without a ClusterRuntime: every worker owns
// `owned` cores, in-flight counts and the clock are settable.
class FakeView final : public sched::RuntimeView {
 public:
  explicit FakeView(int nodes = 3, int degree = 3) {
    graph::ExpanderParams p;
    p.nodes = nodes;
    p.appranks_per_node = 1;
    p.degree = degree;
    p.seed = 1;
    expander_ = graph::build_expander(p);
    topo_ = std::make_unique<core::Topology>(expander_.graph, 1);
    inflight_.assign(static_cast<std::size_t>(topo_->worker_count()), 0);
    owned_.assign(static_cast<std::size_t>(topo_->worker_count()), 2);
    usable_.assign(static_cast<std::size_t>(topo_->worker_count()), 1);
    for (int a = 0; a < topo_->apprank_count(); ++a) {
      locs_.push_back(
          std::make_unique<nanos::DataLocations>(topo_->home_node(a)));
    }
  }

  [[nodiscard]] const core::Topology& topology() const override {
    return *topo_;
  }
  [[nodiscard]] bool usable(core::WorkerId w) const override {
    return usable_[static_cast<std::size_t>(w)] != 0;
  }
  [[nodiscard]] int inflight(core::WorkerId w) const override {
    return inflight_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] int owned_cores(core::WorkerId w) const override {
    return owned_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] int inflight_per_core() const override { return 2; }
  [[nodiscard]] const nanos::DataLocations& locations(
      int apprank) const override {
    return *locs_[static_cast<std::size_t>(apprank)];
  }
  [[nodiscard]] sim::SimTime now() const override { return now_; }
  [[nodiscard]] const net::LinkLoadView* link_load() const override {
    return nullptr;
  }

  sim::SimTime now_ = 0.0;
  std::vector<int> inflight_;
  std::vector<int> owned_;
  std::vector<char> usable_;

 private:
  graph::ExpanderResult expander_;
  std::unique_ptr<core::Topology> topo_;
  std::vector<std::unique_ptr<nanos::DataLocations>> locs_;
};

// --- golden schedule fingerprints --------------------------------------------
//
// FNV-1a over every task's placement and timing plus the makespan and
// event count. The constants below were captured from the pre-refactor
// binary (the §5.5 rule still hard-coded in core/runtime.cpp) and must
// never change for sched=locality: they prove the extraction is
// bit-identical, including crash/rescue re-queues and net-mode runs.

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::uint64_t schedule_fingerprint(const core::ClusterRuntime& rt,
                                   const core::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const nanos::TaskPool& pool = rt.tasks();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const nanos::Task& t = pool.get(static_cast<nanos::TaskId>(i));
    h = fp_mix(h, t.id);
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.scheduled_node)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_worker)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_core)));
    h = fp_mix(h, static_cast<std::uint64_t>(t.executions));
    h = fp_mix(h, bits_of(t.start_at));
    h = fp_mix(h, bits_of(t.finish_at));
  }
  h = fp_mix(h, bits_of(r.makespan));
  h = fp_mix(h, r.events_fired);
  return h;
}

constexpr std::uint64_t kGoldenPlain = 0x5515139c5bf2c300ull;
constexpr std::uint64_t kGoldenCrash = 0x58b761ad63ad7735ull;
constexpr std::uint64_t kGoldenNet = 0xb613ed57f79b2e8aull;

core::RuntimeConfig plain_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 2;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig plain_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 1.8;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 40;
  return cfg;
}

core::RuntimeConfig net_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  return cfg;
}

apps::SyntheticConfig net_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.iterations = 2;
  cfg.tasks_per_rank = 24;
  cfg.imbalance = 2.0;
  cfg.bytes_per_task = 1 << 20;
  return cfg;
}

TEST(GoldenSchedule, LocalityDefaultIsBitIdenticalToLegacy) {
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(plain_config());
  const auto r = rt.run(wl);
  EXPECT_EQ(schedule_fingerprint(rt, r), kGoldenPlain);
  EXPECT_EQ(r.sched_policy, "locality");
  EXPECT_EQ(r.sched.offloads_steered, 0u);
  EXPECT_EQ(r.sched.offloads_suppressed, 0u);
  EXPECT_GT(r.sched.decisions, 0u);
}

TEST(GoldenSchedule, ExplicitLocalityNameMatchesDefault) {
  core::RuntimeConfig cfg = plain_config();
  cfg.sched.policy = "locality";
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
}

TEST(GoldenSchedule, CrashRescueReplaysIdentically) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  core::ClusterRuntime rt(cfg);
  apps::SyntheticConfig scfg;
  scfg.appranks = 4;
  scfg.iterations = 6;
  scfg.tasks_per_rank = 120;
  scfg.imbalance = 2.0;
  apps::SyntheticWorkload wl(scfg);
  fault::FaultInjector injector(
      fault::FaultPlan()
          .lose_messages(0.10, 0.5, 2.5)
          .degrade_link(2.0, 0.5, 1e-5, 1.0, 3.0)
          .crash_worker(rt.topology().workers_of_apprank(0)[1], 1.5));
  injector.attach(rt);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenCrash);
}

TEST(GoldenSchedule, NetEnabledRunReplaysIdentically) {
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(net_config());
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenNet);
}

// Without a fabric there is no congestion signal: the congestion policy
// must decay to the locality rule *exactly*, not just approximately.
TEST(GoldenSchedule, CongestionWithoutFabricDecaysToLocality) {
  core::RuntimeConfig cfg = plain_config();
  cfg.sched.policy = "congestion";
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  EXPECT_EQ(schedule_fingerprint(rt, r), kGoldenPlain);
  EXPECT_EQ(r.sched_policy, "congestion");
  EXPECT_EQ(r.sched.offloads_steered, 0u);
  EXPECT_EQ(r.sched.offloads_suppressed, 0u);
}

// --- registry / config validation (no silent fallbacks) ----------------------

TEST(SchedRegistry, KnownPoliciesListsBuiltinsInOrder) {
  const auto names = sched::known_policies();
  ASSERT_GE(names.size(), 4u);  // extensions (e.g. "hier") may follow
  EXPECT_EQ(names[0], "locality");  // first = default
  EXPECT_EQ(names[1], "congestion");
  EXPECT_EQ(names[2], "waittime");
  EXPECT_EQ(names[3], "adaptive");
}

TEST(SchedRegistry, UnknownPolicyNameThrowsListingValidValues) {
  core::RuntimeConfig cfg = plain_config();
  cfg.sched.policy = "loclaity";  // typo must not fall back silently
  try {
    core::ClusterRuntime rt(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("loclaity"), std::string::npos) << msg;
    EXPECT_NE(msg.find("locality"), std::string::npos) << msg;
    EXPECT_NE(msg.find("congestion"), std::string::npos) << msg;
    EXPECT_NE(msg.find("waittime"), std::string::npos) << msg;
  }
}

TEST(NameParsing, PolicyKindRoundTripsAndRejectsUnknown) {
  for (const core::PolicyKind k :
       {core::PolicyKind::None, core::PolicyKind::Local,
        core::PolicyKind::Global}) {
    EXPECT_EQ(core::parse_policy_kind(core::to_string(k)), k);
  }
  try {
    (void)core::parse_policy_kind("glboal");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("glboal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("global"), std::string::npos) << msg;
  }
}

TEST(NameParsing, TopologyKindRoundTripsAndRejectsUnknown) {
  for (const net::TopologyKind k :
       {net::TopologyKind::Crossbar, net::TopologyKind::FatTree}) {
    EXPECT_EQ(net::parse_topology_kind(net::to_string(k)), k);
  }
  try {
    (void)net::parse_topology_kind("dragonfly");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dragonfly"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fat-tree"), std::string::npos) << msg;
  }
}

// --- feedback policies --------------------------------------------------------

// On an oversubscribed fat-tree with heavy per-task input data the
// congestion policy must actually deviate from the locality baseline
// (steer around or suppress into saturated uplinks).
TEST(CongestionPolicy, DeviatesFromBaselineOnSaturatedFatTree) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(8, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  cfg.net.uplink_bandwidth = 2e8;  // 4:1-ish oversubscription
  cfg.sched.policy = "congestion";

  apps::SyntheticConfig scfg;
  scfg.appranks = 8;
  scfg.iterations = 3;
  scfg.tasks_per_rank = 40;
  scfg.imbalance = 2.5;
  scfg.bytes_per_task = 4 << 20;
  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.sched_policy, "congestion");
  EXPECT_GT(r.sched.decisions, 0u);
  EXPECT_GT(r.sched.offloads_considered, 0u);
  EXPECT_GT(r.sched.offloads_steered + r.sched.offloads_suppressed, 0u)
      << "congestion policy never deviated from the locality baseline "
         "despite a saturated fat-tree";
  EXPECT_GT(r.tasks_total, 0u);
}

// Under imbalance, tasks burst-ready while the wait EWMA is still near
// zero: the waittime policy must initially suppress remote offloads and
// offload less than the locality baseline overall.
TEST(WaittimePolicy, SuppressesOffloadsWhileWaitsAreShort) {
  core::RuntimeConfig cfg = plain_config();
  apps::SyntheticWorkload wl_base(plain_workload());
  core::ClusterRuntime base_rt(cfg);
  const auto base = base_rt.run(wl_base);

  cfg.sched.policy = "waittime";
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.sched_policy, "waittime");
  EXPECT_GT(r.sched.offloads_suppressed, 0u);
  // Suppression defers to pull-based stealing rather than forbidding
  // offloads outright, so the total offload count may drift either way —
  // but every task must still complete exactly once.
  EXPECT_EQ(r.tasks_total, base.tasks_total);
  EXPECT_GT(base.tasks_offloaded, 0u);
}

// --- reporting ----------------------------------------------------------------

TEST(SchedReport, FormatsCountersWithPercentages) {
  sched::SchedStats stats;
  stats.decisions = 100;
  stats.offloads_considered = 50;
  stats.offloads_steered = 10;
  stats.offloads_suppressed = 5;
  const std::string report = dlb::sched_report("congestion", stats);
  EXPECT_NE(report.find("policy: congestion"), std::string::npos) << report;
  EXPECT_NE(report.find("victim selections"), std::string::npos);
  EXPECT_NE(report.find("100"), std::string::npos);
  EXPECT_NE(report.find("offloads steered"), std::string::npos);
  EXPECT_NE(report.find("20.0%"), std::string::npos) << report;
  EXPECT_NE(report.find("10.0%"), std::string::npos) << report;
}

TEST(SchedReport, ZeroConsideredDoesNotDivide) {
  const std::string report = dlb::sched_report("locality", {});
  EXPECT_NE(report.find("policy: locality"), std::string::npos);
  EXPECT_NE(report.find("0.0%"), std::string::npos);
}

// --- registry extension error paths -------------------------------------------

std::unique_ptr<sched::Scheduler> dummy_factory(const sched::SchedConfig&,
                                                const sched::RuntimeView& v) {
  return std::make_unique<sched::LocalityScheduler>(v);
}

TEST(SchedRegistry, DuplicateRegistrationThrows) {
  // Builtins can never be shadowed...
  EXPECT_THROW(sched::register_policy("locality", dummy_factory),
               std::invalid_argument);
  EXPECT_THROW(sched::register_policy("adaptive", dummy_factory),
               std::invalid_argument);
  // ...and neither can an already-registered extension. register_policies
  // itself is idempotent (guarded), but a raw re-registration must throw.
  hier::register_policies();
  hier::register_policies();  // idempotent, no throw
  EXPECT_THROW(sched::register_policy("hier", dummy_factory),
               std::invalid_argument);
}

TEST(SchedRegistry, NullFactoryThrows) {
  EXPECT_THROW(sched::register_policy("null-policy", nullptr),
               std::invalid_argument);
}

// --- wait-estimate decay ------------------------------------------------------

// Regression: a helper that was busy, went idle for many half-lives, and
// then turns bursty again must not be judged by its stale busy-phase
// estimate — the decayed value reads near zero and the first fresh sample
// dominates the blend.
TEST(DecayEwma, IdleThenBurstyIsNotJudgedByStaleSamples) {
  sched::DecayEwma e;
  double now = 0.0;
  for (int i = 0; i < 10; ++i) {
    e.observe(0.2, now, 0.7, 0.5);
    now += 0.01;
  }
  const double busy = e.read(now, 0.5);
  EXPECT_GT(busy, 0.05);

  // 10 s idle = 20 half-lives: the estimate must have melted away.
  now += 10.0;
  const double idle = e.read(now, 0.5);
  EXPECT_LT(idle, 1e-6);
  // read() is pure: it must not mutate the stored value.
  EXPECT_DOUBLE_EQ(e.read(now, 0.5), idle);

  // Bursty again: the new sample dominates (blend of ~0 decayed estimate
  // and the fresh observation), instead of resuming from the busy phase.
  e.observe(0.1, now, 0.7, 0.5);
  EXPECT_NEAR(e.read(now, 0.5), 0.3 * 0.1, 0.005);
}

TEST(DecayEwma, NonPositiveHalfLifeDisablesDecay) {
  sched::DecayEwma legacy;
  legacy.observe(0.2, 0.0, 0.7, 0.0);
  EXPECT_DOUBLE_EQ(legacy.read(1000.0, 0.0), legacy.read(0.0, 0.0));
}

// --- adaptive portfolio: explore/exploit with hysteresis ----------------------

// Pressure-injectable portfolio: the virtual fabric probe is replaced by
// a settable value so the switching logic is tested in isolation.
class TestAdaptive final : public sched::AdaptiveScheduler {
 public:
  using sched::AdaptiveScheduler::AdaptiveScheduler;
  double pressure = 0.0;

 protected:
  [[nodiscard]] double sampled_pressure(const nanos::Task&) override {
    return pressure;
  }
};

using AMode = sched::AdaptiveScheduler::Mode;

sched::SchedConfig tiny_adaptive_config() {
  sched::SchedConfig cfg;
  cfg.adaptive_window = 0.05;  // short windows so tests converge quickly
  cfg.adaptive_dwell = 2;
  return cfg;
}

// Drives `picks` victim selections. The simulated clock advances by
// dt_of(active mode) per pick and every pick reports one task start with
// the given wait — so a mode's measured throughput is 1/dt and the
// portfolio must measure its way to whichever mode dt_of favours.
void drive(TestAdaptive& s, FakeView& view, int picks,
           double (*dt_of)(AMode), double wait = 0.01) {
  nanos::Task t;
  t.apprank = 0;
  const core::WorkerId hw = view.topology().home_worker(0);
  for (int i = 0; i < picks; ++i) {
    (void)s.pick(t);
    view.now_ += dt_of(s.mode());
    s.on_task_started(t, hw, wait);
  }
}

TEST(AdaptivePolicy, ElectsTheModeWithHighestMeasuredThroughput) {
  FakeView view;
  TestAdaptive s(tiny_adaptive_config(), view);
  EXPECT_TRUE(s.exploring());
  EXPECT_EQ(s.mode(), AMode::Locality);

  // Congestion mode measurably starts tasks 2x faster. 60 picks cover
  // the full explore cycle (one scored window per mode) with exploit
  // windows to spare.
  drive(s, view, 60, [](AMode m) {
    return m == AMode::Congestion ? 0.005 : 0.01;
  });
  EXPECT_FALSE(s.exploring());
  EXPECT_EQ(s.incumbent(), AMode::Congestion);
  EXPECT_EQ(s.mode(), AMode::Congestion);
  // Probe cycle visited all three modes: locality->congestion->waittime,
  // then back to the winner.
  EXPECT_EQ(s.switches(), 3u);
  EXPECT_GT(s.decisions_in(AMode::Locality), 0u);
  EXPECT_GT(s.decisions_in(AMode::Waittime), 0u);
  EXPECT_GT(s.probe_rate(AMode::Congestion), s.probe_rate(AMode::Locality));
}

TEST(AdaptivePolicy, PressureOscillationInsideDeadBandNeverFlaps) {
  FakeView view;
  TestAdaptive s(tiny_adaptive_config(), view);
  drive(s, view, 60, [](AMode m) {
    return m == AMode::Congestion ? 0.005 : 0.01;
  });
  ASSERT_FALSE(s.exploring());
  const std::uint64_t settled = s.switches();

  // Pressure bouncing inside [low, high) plus steady waits and rates:
  // many windows later the portfolio must still be exploiting the same
  // incumbent.
  nanos::Task t;
  t.apprank = 0;
  const core::WorkerId hw = view.topology().home_worker(0);
  for (int i = 0; i < 80; ++i) {
    s.pressure = (i % 2 == 0) ? 0.30 : 0.45;
    (void)s.pick(t);
    view.now_ += 0.005;
    s.on_task_started(t, hw, 0.01);
  }
  EXPECT_FALSE(s.exploring());
  EXPECT_EQ(s.mode(), AMode::Congestion);
  EXPECT_EQ(s.switches(), settled);
}

TEST(AdaptivePolicy, PressureRegimeCrossingTriggersReExploration) {
  FakeView view;
  TestAdaptive s(tiny_adaptive_config(), view);
  s.pressure = 0.0;  // latches the low regime during the first election
  drive(s, view, 60, [](AMode m) {
    return m == AMode::Congestion ? 0.005 : 0.01;
  });
  ASSERT_EQ(s.incumbent(), AMode::Congestion);

  // Crossing the high threshold is a regime change: after the minimum
  // dwell the portfolio re-explores and elects the new best mode.
  s.pressure = 0.90;
  drive(s, view, 160, [](AMode m) {
    return m == AMode::Waittime ? 0.005 : 0.01;
  });
  EXPECT_FALSE(s.exploring());
  EXPECT_EQ(s.incumbent(), AMode::Waittime);
}

TEST(AdaptivePolicy, WaitDriftTriggersReExploration) {
  FakeView view;
  TestAdaptive s(tiny_adaptive_config(), view);
  drive(s, view, 60, [](AMode m) {
    return m == AMode::Congestion ? 0.005 : 0.01;
  });
  ASSERT_EQ(s.incumbent(), AMode::Congestion);

  // The incumbent's observed waits blow past adaptive_wait_exit x the
  // wait measured at election: the portfolio must notice, re-measure,
  // and elect whichever mode now performs best.
  drive(s, view, 160, [](AMode m) {
    return m == AMode::Locality ? 0.005 : 0.01;
  }, 1.0);
  EXPECT_EQ(s.incumbent(), AMode::Locality);
}

TEST(AdaptivePolicy, EquivalentModesKeepTheIncumbent) {
  FakeView view;
  TestAdaptive s(tiny_adaptive_config(), view);
  // All modes measure identical throughput: the election margin keeps
  // the incumbent (locality, the starting default) — no switch on ties.
  drive(s, view, 60, [](AMode) { return 0.01; });
  EXPECT_FALSE(s.exploring());
  EXPECT_EQ(s.incumbent(), AMode::Locality);
  EXPECT_EQ(s.mode(), AMode::Locality);
}

// Drives the explore cycle under heavy observed waits until the probe
// advances into the waittime window, *without* folding any observation
// in after the switch. Returns false if the probe never got there.
bool drive_into_waittime_probe(TestAdaptive& s, FakeView& view) {
  nanos::Task t;
  t.apprank = 0;
  const core::WorkerId hw = view.topology().home_worker(0);
  for (int i = 0; i < 200; ++i) {
    (void)s.pick(t);
    if (s.mode() == AMode::Waittime) return true;
    view.now_ += 0.01;
    // Heavy waits: the always-warm forwarding runs every estimator hot
    // before the waittime probe opens.
    s.on_task_started(t, hw, 0.5);
  }
  return false;
}

// Regression for SchedConfig::adaptive_cold_probe: the waittime probe
// must open on *cold* estimates. With the always-warm carryover the probe
// inherits the previous modes' 0.5 s waits, suppression never engages,
// and the window measures locality-with-extra-steps instead of the
// mode's own suppress -> low-waits equilibrium.
TEST(AdaptivePolicy, WaittimeProbeOpensCold) {
  FakeView view;
  sched::SchedConfig cfg = tiny_adaptive_config();
  ASSERT_TRUE(cfg.adaptive_cold_probe);  // the default
  TestAdaptive s(cfg, view);
  ASSERT_TRUE(drive_into_waittime_probe(s, view));
  // Entering the probe reset the estimator: nothing observed yet, so the
  // estimate reads exactly "never waited" — well under wait_offload_min,
  // where the mode's suppression fixed point is reachable.
  EXPECT_EQ(s.waittime().wait_estimate(0), 0.0);
  EXPECT_LT(s.waittime().wait_estimate(0), cfg.wait_offload_min);
}

TEST(AdaptivePolicy, ColdProbeOffRestoresWarmCarryover) {
  FakeView view;
  sched::SchedConfig cfg = tiny_adaptive_config();
  cfg.adaptive_cold_probe = false;
  TestAdaptive s(cfg, view);
  ASSERT_TRUE(drive_into_waittime_probe(s, view));
  // Legacy behaviour: the probe opens on the previous modes' hot waits.
  EXPECT_GT(s.waittime().wait_estimate(0), cfg.wait_offload_min);
}

}  // namespace
