// Tests of the pluggable scheduler subsystem (tlb::sched): golden-schedule
// regressions proving the extraction of the §5.5 rule out of the runtime
// kept placements bit-identical, policy registry error paths, and the
// behaviour of the congestion / waittime feedback policies.
#include <cstring>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/policies.hpp"
#include "core/runtime.hpp"
#include "dlb/report.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/config.hpp"
#include "sched/registry.hpp"

namespace {

using namespace tlb;

// --- golden schedule fingerprints --------------------------------------------
//
// FNV-1a over every task's placement and timing plus the makespan and
// event count. The constants below were captured from the pre-refactor
// binary (the §5.5 rule still hard-coded in core/runtime.cpp) and must
// never change for sched=locality: they prove the extraction is
// bit-identical, including crash/rescue re-queues and net-mode runs.

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::uint64_t schedule_fingerprint(const core::ClusterRuntime& rt,
                                   const core::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const nanos::TaskPool& pool = rt.tasks();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const nanos::Task& t = pool.get(static_cast<nanos::TaskId>(i));
    h = fp_mix(h, t.id);
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.scheduled_node)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_worker)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_core)));
    h = fp_mix(h, static_cast<std::uint64_t>(t.executions));
    h = fp_mix(h, bits_of(t.start_at));
    h = fp_mix(h, bits_of(t.finish_at));
  }
  h = fp_mix(h, bits_of(r.makespan));
  h = fp_mix(h, r.events_fired);
  return h;
}

constexpr std::uint64_t kGoldenPlain = 0x5515139c5bf2c300ull;
constexpr std::uint64_t kGoldenCrash = 0x58b761ad63ad7735ull;
constexpr std::uint64_t kGoldenNet = 0xb613ed57f79b2e8aull;

core::RuntimeConfig plain_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 2;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig plain_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 1.8;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 40;
  return cfg;
}

core::RuntimeConfig net_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  return cfg;
}

apps::SyntheticConfig net_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.iterations = 2;
  cfg.tasks_per_rank = 24;
  cfg.imbalance = 2.0;
  cfg.bytes_per_task = 1 << 20;
  return cfg;
}

TEST(GoldenSchedule, LocalityDefaultIsBitIdenticalToLegacy) {
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(plain_config());
  const auto r = rt.run(wl);
  EXPECT_EQ(schedule_fingerprint(rt, r), kGoldenPlain);
  EXPECT_EQ(r.sched_policy, "locality");
  EXPECT_EQ(r.sched.offloads_steered, 0u);
  EXPECT_EQ(r.sched.offloads_suppressed, 0u);
  EXPECT_GT(r.sched.decisions, 0u);
}

TEST(GoldenSchedule, ExplicitLocalityNameMatchesDefault) {
  core::RuntimeConfig cfg = plain_config();
  cfg.sched.policy = "locality";
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
}

TEST(GoldenSchedule, CrashRescueReplaysIdentically) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  core::ClusterRuntime rt(cfg);
  apps::SyntheticConfig scfg;
  scfg.appranks = 4;
  scfg.iterations = 6;
  scfg.tasks_per_rank = 120;
  scfg.imbalance = 2.0;
  apps::SyntheticWorkload wl(scfg);
  fault::FaultInjector injector(
      fault::FaultPlan()
          .lose_messages(0.10, 0.5, 2.5)
          .degrade_link(2.0, 0.5, 1e-5, 1.0, 3.0)
          .crash_worker(rt.topology().workers_of_apprank(0)[1], 1.5));
  injector.attach(rt);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenCrash);
}

TEST(GoldenSchedule, NetEnabledRunReplaysIdentically) {
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(net_config());
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenNet);
}

// Without a fabric there is no congestion signal: the congestion policy
// must decay to the locality rule *exactly*, not just approximately.
TEST(GoldenSchedule, CongestionWithoutFabricDecaysToLocality) {
  core::RuntimeConfig cfg = plain_config();
  cfg.sched.policy = "congestion";
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  EXPECT_EQ(schedule_fingerprint(rt, r), kGoldenPlain);
  EXPECT_EQ(r.sched_policy, "congestion");
  EXPECT_EQ(r.sched.offloads_steered, 0u);
  EXPECT_EQ(r.sched.offloads_suppressed, 0u);
}

// --- registry / config validation (no silent fallbacks) ----------------------

TEST(SchedRegistry, KnownPoliciesListsAllThree) {
  const auto names = sched::known_policies();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "locality");  // first = default
  EXPECT_EQ(names[1], "congestion");
  EXPECT_EQ(names[2], "waittime");
}

TEST(SchedRegistry, UnknownPolicyNameThrowsListingValidValues) {
  core::RuntimeConfig cfg = plain_config();
  cfg.sched.policy = "loclaity";  // typo must not fall back silently
  try {
    core::ClusterRuntime rt(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("loclaity"), std::string::npos) << msg;
    EXPECT_NE(msg.find("locality"), std::string::npos) << msg;
    EXPECT_NE(msg.find("congestion"), std::string::npos) << msg;
    EXPECT_NE(msg.find("waittime"), std::string::npos) << msg;
  }
}

TEST(NameParsing, PolicyKindRoundTripsAndRejectsUnknown) {
  for (const core::PolicyKind k :
       {core::PolicyKind::None, core::PolicyKind::Local,
        core::PolicyKind::Global}) {
    EXPECT_EQ(core::parse_policy_kind(core::to_string(k)), k);
  }
  try {
    (void)core::parse_policy_kind("glboal");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("glboal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("global"), std::string::npos) << msg;
  }
}

TEST(NameParsing, TopologyKindRoundTripsAndRejectsUnknown) {
  for (const net::TopologyKind k :
       {net::TopologyKind::Crossbar, net::TopologyKind::FatTree}) {
    EXPECT_EQ(net::parse_topology_kind(net::to_string(k)), k);
  }
  try {
    (void)net::parse_topology_kind("dragonfly");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dragonfly"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fat-tree"), std::string::npos) << msg;
  }
}

// --- feedback policies --------------------------------------------------------

// On an oversubscribed fat-tree with heavy per-task input data the
// congestion policy must actually deviate from the locality baseline
// (steer around or suppress into saturated uplinks).
TEST(CongestionPolicy, DeviatesFromBaselineOnSaturatedFatTree) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(8, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  cfg.net.uplink_bandwidth = 2e8;  // 4:1-ish oversubscription
  cfg.sched.policy = "congestion";

  apps::SyntheticConfig scfg;
  scfg.appranks = 8;
  scfg.iterations = 3;
  scfg.tasks_per_rank = 40;
  scfg.imbalance = 2.5;
  scfg.bytes_per_task = 4 << 20;
  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.sched_policy, "congestion");
  EXPECT_GT(r.sched.decisions, 0u);
  EXPECT_GT(r.sched.offloads_considered, 0u);
  EXPECT_GT(r.sched.offloads_steered + r.sched.offloads_suppressed, 0u)
      << "congestion policy never deviated from the locality baseline "
         "despite a saturated fat-tree";
  EXPECT_GT(r.tasks_total, 0u);
}

// Under imbalance, tasks burst-ready while the wait EWMA is still near
// zero: the waittime policy must initially suppress remote offloads and
// offload less than the locality baseline overall.
TEST(WaittimePolicy, SuppressesOffloadsWhileWaitsAreShort) {
  core::RuntimeConfig cfg = plain_config();
  apps::SyntheticWorkload wl_base(plain_workload());
  core::ClusterRuntime base_rt(cfg);
  const auto base = base_rt.run(wl_base);

  cfg.sched.policy = "waittime";
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.sched_policy, "waittime");
  EXPECT_GT(r.sched.offloads_suppressed, 0u);
  // Suppression defers to pull-based stealing rather than forbidding
  // offloads outright, so the total offload count may drift either way —
  // but every task must still complete exactly once.
  EXPECT_EQ(r.tasks_total, base.tasks_total);
  EXPECT_GT(base.tasks_offloaded, 0u);
}

// --- reporting ----------------------------------------------------------------

TEST(SchedReport, FormatsCountersWithPercentages) {
  sched::SchedStats stats;
  stats.decisions = 100;
  stats.offloads_considered = 50;
  stats.offloads_steered = 10;
  stats.offloads_suppressed = 5;
  const std::string report = dlb::sched_report("congestion", stats);
  EXPECT_NE(report.find("policy: congestion"), std::string::npos) << report;
  EXPECT_NE(report.find("victim selections"), std::string::npos);
  EXPECT_NE(report.find("100"), std::string::npos);
  EXPECT_NE(report.find("offloads steered"), std::string::npos);
  EXPECT_NE(report.find("20.0%"), std::string::npos) << report;
  EXPECT_NE(report.find("10.0%"), std::string::npos) << report;
}

TEST(SchedReport, ZeroConsideredDoesNotDivide) {
  const std::string report = dlb::sched_report("locality", {});
  EXPECT_NE(report.find("policy: locality"), std::string::npos);
  EXPECT_NE(report.find("0.0%"), std::string::npos);
}

}  // namespace
