// Unit and property tests for bipartite graphs, expander construction and
// the persistent graph cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <tuple>

#include "graph/bipartite_graph.hpp"
#include "graph/expander.hpp"
#include "graph/graph_cache.hpp"

namespace tlb::graph {
namespace {

TEST(BipartiteGraph, AddAndQueryEdges) {
  BipartiteGraph g(2, 3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 1));
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(BipartiteGraph, DegreesTrackEdges) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.left_degree(0), 2);
  EXPECT_EQ(g.left_degree(1), 1);
  EXPECT_EQ(g.right_degree(0), 2);
  EXPECT_TRUE(g.is_biregular(2, 2) == false);
}

TEST(BipartiteGraph, ConnectivityDetection) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(0, 1);
  EXPECT_TRUE(g.is_connected());
}

TEST(BipartiteGraph, NeighborhoodSize) {
  BipartiteGraph g(3, 4);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(2, 3);
  const int subset01[] = {0, 1};
  EXPECT_EQ(g.neighborhood_size(subset01), 2);
  const int all[] = {0, 1, 2};
  EXPECT_EQ(g.neighborhood_size(all), 3);
}

TEST(Expander, DegreeOneIsHomeOnly) {
  const auto r = build_expander({.nodes = 4, .appranks_per_node = 2,
                                 .degree = 1});
  EXPECT_EQ(r.graph.left_count(), 8);
  EXPECT_TRUE(r.graph.is_biregular(1, 2));
  for (int a = 0; a < 8; ++a) {
    EXPECT_EQ(r.graph.neighbors_of_left(a).front(), home_node(a, 2));
  }
}

TEST(Expander, HomeIsAlwaysFirstNeighbour) {
  const auto r = build_expander({.nodes = 16, .appranks_per_node = 2,
                                 .degree = 4, .seed = 3});
  for (int a = 0; a < r.graph.left_count(); ++a) {
    EXPECT_EQ(r.graph.neighbors_of_left(a).front(), home_node(a, 2));
  }
}

TEST(Expander, RejectsImpossibleDegree) {
  EXPECT_THROW(build_expander({.nodes = 2, .appranks_per_node = 1,
                               .degree = 3}),
               std::invalid_argument);
  EXPECT_THROW(build_expander({.nodes = 0, .appranks_per_node = 1,
                               .degree = 1}),
               std::invalid_argument);
}

TEST(Expander, ConnectedForDegreeAtLeastTwo) {
  for (int nodes : {2, 4, 8, 16, 32}) {
    const auto r = build_expander({.nodes = nodes, .appranks_per_node = 1,
                                   .degree = 2, .seed = 1});
    EXPECT_TRUE(r.graph.is_connected()) << "nodes=" << nodes;
  }
}

TEST(Expander, DeterministicForSeed) {
  const auto a = build_expander({.nodes = 16, .appranks_per_node = 2,
                                 .degree = 3, .seed = 9});
  const auto b = build_expander({.nodes = 16, .appranks_per_node = 2,
                                 .degree = 3, .seed = 9});
  EXPECT_EQ(serialize(a.graph), serialize(b.graph));
}

TEST(Expander, ExpansionOfCompleteBipartiteIsMaximal) {
  // K_{4,4}: every subset of <= 2 appranks sees all 4 nodes.
  BipartiteGraph g(4, 4);
  for (int a = 0; a < 4; ++a) {
    for (int n = 0; n < 4; ++n) g.add_edge(a, n);
  }
  EXPECT_DOUBLE_EQ(vertex_expansion(g), 4.0 / 2.0);
}

TEST(Expander, ExpansionOfDisjointPairsIsOne) {
  BipartiteGraph g(4, 4);
  for (int a = 0; a < 4; ++a) g.add_edge(a, a);
  EXPECT_DOUBLE_EQ(vertex_expansion(g), 1.0);
}

TEST(Expander, SampledExpansionUpperBoundsExact) {
  const auto r = build_expander({.nodes = 12, .appranks_per_node = 1,
                                 .degree = 3, .seed = 4});
  const double exact = vertex_expansion(r.graph, /*exact_limit=*/20);
  const double sampled = vertex_expansion(r.graph, /*exact_limit=*/0,
                                          /*samples=*/500, /*seed=*/2);
  EXPECT_GE(sampled, exact - 1e-12);
}

TEST(Expander, SerializeParseRoundTrip) {
  const auto r = build_expander({.nodes = 8, .appranks_per_node = 2,
                                 .degree = 3, .seed = 5});
  const auto parsed = parse(serialize(r.graph));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(serialize(*parsed), serialize(r.graph));
}

TEST(Expander, ParseRejectsGarbage) {
  EXPECT_FALSE(parse("not a graph").has_value());
  EXPECT_FALSE(parse("tlbgraph 2\n1 1\n1 0\n").has_value());
  EXPECT_FALSE(parse("tlbgraph 1\n1 1\n2 0 0\n").has_value());  // dup edge
  EXPECT_FALSE(parse("tlbgraph 1\n1 1\n1 5\n").has_value());    // range
}

struct BiregularCase {
  int nodes;
  int per_node;
  int degree;
};

class ExpanderBiregular : public ::testing::TestWithParam<BiregularCase> {};

TEST_P(ExpanderBiregular, GeneratesBiregularGraphs) {
  const auto [nodes, per_node, degree] = GetParam();
  const auto r = build_expander({.nodes = nodes,
                                 .appranks_per_node = per_node,
                                 .degree = degree,
                                 .seed = 13});
  EXPECT_TRUE(r.graph.is_biregular(degree, per_node * degree))
      << "nodes=" << nodes << " per_node=" << per_node << " degree=" << degree;
  EXPECT_EQ(r.graph.left_count(), nodes * per_node);
  EXPECT_EQ(r.graph.right_count(), nodes);
  if (degree >= 2) {
    EXPECT_TRUE(r.graph.is_connected());
    // Home edges guarantee |N(A)| >= #distinct homes >= |A| / per_node.
    EXPECT_GE(r.expansion, 1.0 / per_node - 1e-9);
  }
  // No apprank may appear twice on a node and home must be adjacent.
  for (int a = 0; a < r.graph.left_count(); ++a) {
    const auto& nb = r.graph.neighbors_of_left(a);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        EXPECT_NE(nb[i], nb[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExpanderBiregular,
    ::testing::Values(BiregularCase{2, 1, 2}, BiregularCase{4, 1, 2},
                      BiregularCase{4, 2, 3}, BiregularCase{8, 1, 4},
                      BiregularCase{8, 2, 4}, BiregularCase{16, 1, 3},
                      BiregularCase{16, 2, 4}, BiregularCase{32, 2, 4},
                      BiregularCase{32, 1, 8}, BiregularCase{64, 2, 4},
                      BiregularCase{64, 1, 2}));

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("tlb_graph_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(GraphCache, BuildsOnMissAndServesOnHit) {
  TempDir tmp;
  GraphCache cache(tmp.path);
  const ExpanderParams p{.nodes = 8, .appranks_per_node = 2, .degree = 3,
                         .seed = 4};
  const auto first = cache.load_or_build(p);
  EXPECT_GT(first.attempts, 0);  // freshly built
  EXPECT_EQ(cache.size(), 1u);
  const auto second = cache.load_or_build(p);
  EXPECT_EQ(second.attempts, 0);  // from cache
  EXPECT_EQ(serialize(second.graph), serialize(first.graph));
}

TEST(GraphCache, DistinctParamsGetDistinctEntries) {
  TempDir tmp;
  GraphCache cache(tmp.path);
  cache.load_or_build({.nodes = 4, .appranks_per_node = 1, .degree = 2});
  cache.load_or_build({.nodes = 4, .appranks_per_node = 1, .degree = 3});
  cache.load_or_build({.nodes = 8, .appranks_per_node = 1, .degree = 2});
  EXPECT_EQ(cache.size(), 3u);
}

TEST(GraphCache, RejectsCorruptedEntry) {
  TempDir tmp;
  GraphCache cache(tmp.path);
  const ExpanderParams p{.nodes = 4, .appranks_per_node = 1, .degree = 2};
  cache.load_or_build(p);
  // Corrupt the stored file; the cache must rebuild instead of serving it.
  std::ofstream(tmp.path / (GraphCache::key(p) + ".tlbgraph"))
      << "tlbgraph 1\n2 2\n1 0\n1 1\n";  // wrong shape for the params
  EXPECT_FALSE(cache.load(p).has_value());
  const auto rebuilt = cache.load_or_build(p);
  EXPECT_TRUE(rebuilt.graph.is_biregular(2, 2));
}

TEST(GraphCache, KeyIsDeterministic) {
  const ExpanderParams p{.nodes = 16, .appranks_per_node = 2, .degree = 4,
                         .seed = 9};
  EXPECT_EQ(GraphCache::key(p), GraphCache::key(p));
  ExpanderParams q = p;
  q.seed = 10;
  EXPECT_NE(GraphCache::key(p), GraphCache::key(q));
}

TEST(Expander, LargeGraphStillBiregularAndConnected) {
  const auto r = build_expander({.nodes = 64, .appranks_per_node = 2,
                                 .degree = 8, .seed = 17});
  EXPECT_TRUE(r.graph.is_biregular(8, 16));
  EXPECT_TRUE(r.graph.is_connected());
}

}  // namespace
}  // namespace tlb::graph
