// Tests of the failure-detection / graceful-degradation layer (tlb::resil):
// phi-accrual detector, task leases with capped backoff, outlier
// quarantine, heartbeat-mode crash recovery with exactly-once completion
// accounting, link-blackout false-suspicion + readmission, the solver
// fallback chain, and expander rewiring after a disconnecting crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/policies.hpp"
#include "core/runtime.hpp"
#include "core/workload.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/recovery.hpp"
#include "resil/lease.hpp"
#include "resil/phi_detector.hpp"
#include "resil/quarantine.hpp"

namespace tlb {
namespace {

core::RuntimeConfig resil_cluster(int nodes, int cores, int degree) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(nodes, cores);
  cfg.appranks_per_node = 1;
  cfg.degree = degree;
  cfg.policy = core::PolicyKind::Global;
  return cfg;
}

apps::SyntheticConfig synth(int appranks, int iterations, int tasks,
                            double imbalance) {
  apps::SyntheticConfig scfg;
  scfg.appranks = appranks;
  scfg.iterations = iterations;
  scfg.tasks_per_rank = tasks;
  scfg.imbalance = imbalance;
  return scfg;
}

/// Invariants every completed heartbeat-mode run must satisfy: every task
/// finished (zero lost), nothing leased or pending any more, and the
/// iteration count is exactly the configured one.
void expect_all_work_done(const core::ClusterRuntime& rt,
                          const core::RunResult& r, int iterations) {
  EXPECT_EQ(r.iteration_times.size(), static_cast<std::size_t>(iterations));
  EXPECT_EQ(rt.outstanding_leases(), 0u);
  for (int w = 0; w < rt.topology().worker_count(); ++w) {
    EXPECT_EQ(rt.worker_pending(w), 0) << "worker " << w;
  }
  const auto& pool = rt.tasks();
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    const nanos::Task& t = pool.get(id);
    EXPECT_EQ(t.state, nanos::TaskState::Finished) << "task " << id;
    EXPECT_GE(t.executions, 1) << "task " << id;
    // Exactly-once at the home runtime: a task may be *attempted* several
    // times (re-queues, zombies), but each extra attempt is accounted as a
    // re-execution or suppressed as a duplicate — never double-counted.
    EXPECT_LE(t.executions, 1 + t.reexecutions) << "task " << id;
  }
}

// --- phi-accrual detector ----------------------------------------------------

TEST(PhiDetector, SilenceRaisesSuspicion) {
  resil::PhiAccrualDetector det(/*window=*/16, /*min_std=*/0.01);
  EXPECT_FALSE(det.started());
  EXPECT_EQ(det.phi(1.0), 0.0);  // no history: never suspicious

  for (int i = 0; i <= 10; ++i) det.heartbeat(0.05 * i);
  EXPECT_TRUE(det.started());
  EXPECT_NEAR(det.mean(), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(det.stddev(), 0.01);  // deterministic gaps: floored

  const double now = 0.5;  // exactly at the last arrival
  const double phi_fresh = det.phi(now + 0.05);   // one period of silence
  const double phi_late = det.phi(now + 0.15);    // three periods
  const double phi_dead = det.phi(now + 1.00);    // long gone
  EXPECT_LT(phi_fresh, 1.0);
  EXPECT_GT(phi_late, phi_fresh);
  EXPECT_GT(phi_dead, 8.0);
  EXPECT_GE(phi_dead, phi_late);
}

TEST(PhiDetector, ResetForgetsHistory) {
  resil::PhiAccrualDetector det(8, 0.01);
  det.heartbeat(0.0);
  det.heartbeat(0.1);
  EXPECT_TRUE(det.started());
  det.reset();
  EXPECT_FALSE(det.started());
  EXPECT_EQ(det.phi(100.0), 0.0);
}

TEST(PhiDetector, WindowSlidesOldIntervalsOut) {
  resil::PhiAccrualDetector det(/*window=*/4, /*min_std=*/0.001);
  // Four slow gaps, then many fast ones: the slow history must age out.
  for (int i = 0; i <= 4; ++i) det.heartbeat(1.0 * i);
  const double phi_slow = det.phi(4.0 + 0.5);
  for (int i = 1; i <= 8; ++i) det.heartbeat(4.0 + 0.05 * i);
  const double phi_fast = det.phi(4.4 + 0.5);
  EXPECT_GT(phi_fast, phi_slow);  // 0.5 s silence is now alarming
  EXPECT_NEAR(det.mean(), 0.05, 1e-9);
}

// --- lease table -------------------------------------------------------------

TEST(LeaseTable, EpochsAreUniqueAndOrderedRequeue) {
  resil::LeaseTable table;
  auto& l5 = table.grant(5, /*worker=*/2, 0.0);
  auto& l3 = table.grant(3, 2, 0.1);
  auto& l9 = table.grant(9, 1, 0.2);
  EXPECT_NE(l5.epoch, l3.epoch);
  EXPECT_NE(l3.epoch, l9.epoch);
  const auto on2 = table.tasks_on(2);
  ASSERT_EQ(on2.size(), 2u);
  EXPECT_EQ(on2[0], 3u);  // ascending task id: deterministic re-queue order
  EXPECT_EQ(on2[1], 5u);
  table.revoke(3);
  EXPECT_EQ(table.find(3), nullptr);
  EXPECT_EQ(table.size(), 2u);
  // A re-grant of the same task gets a strictly newer epoch.
  const std::uint64_t old_epoch = l5.epoch;
  table.revoke(5);
  auto& l5b = table.grant(5, 0, 0.3);
  EXPECT_GT(l5b.epoch, old_epoch);
}

TEST(LeaseTable, BackoffDelayIsCappedExponential) {
  resil::ResilConfig cfg;
  cfg.lease_timeout = 0.05;
  cfg.lease_backoff = 2.0;
  cfg.lease_timeout_cap = 0.4;
  EXPECT_DOUBLE_EQ(resil::LeaseTable::backoff_delay(cfg, 1), 0.05);
  EXPECT_DOUBLE_EQ(resil::LeaseTable::backoff_delay(cfg, 2), 0.10);
  EXPECT_DOUBLE_EQ(resil::LeaseTable::backoff_delay(cfg, 4), 0.40);
  EXPECT_DOUBLE_EQ(resil::LeaseTable::backoff_delay(cfg, 7), 0.40);  // capped
  cfg.lease_timeout_cap = 0.0;  // cap disabled: pure exponential
  EXPECT_DOUBLE_EQ(resil::LeaseTable::backoff_delay(cfg, 7), 0.05 * 64.0);
}

// --- quarantine --------------------------------------------------------------

TEST(Quarantine, StreakEjectionAndGrowingCooldown) {
  resil::ResilConfig cfg;
  cfg.quarantine_threshold = 3;
  cfg.quarantine_cooling = 1.0;
  cfg.quarantine_backoff = 2.0;
  cfg.quarantine_cooling_cap = 3.0;
  resil::Quarantine q(2, cfg);

  EXPECT_FALSE(q.record_expiry(0));
  EXPECT_FALSE(q.record_expiry(0));
  q.record_success(0);  // a served lease resets the streak
  EXPECT_FALSE(q.record_expiry(0));
  EXPECT_FALSE(q.record_expiry(0));
  EXPECT_TRUE(q.record_expiry(0));  // third consecutive expiry

  EXPECT_DOUBLE_EQ(q.eject(0, 10.0), 11.0);  // first ejection: 1 s cooling
  EXPECT_TRUE(q.ejected(0));
  EXPECT_FALSE(q.ejected(1));
  // Probe found it still silent twice: cooling 2 s, then capped at 3 s.
  EXPECT_DOUBLE_EQ(q.extend(0, 11.0), 13.0);
  EXPECT_DOUBLE_EQ(q.extend(0, 13.0), 16.0);
  q.readmit(0);
  EXPECT_FALSE(q.ejected(0));
  EXPECT_EQ(q.expiry_streak(0), 0);
  // The ejection count survives readmission: the next ejection starts at
  // the capped cooling straight away (flapping pays full price).
  EXPECT_DOUBLE_EQ(q.eject(0, 20.0), 23.0);
}

// --- static ownership plan (last fallback rung) ------------------------------

TEST(Policies, StaticOwnershipPlanSplitsEvenly) {
  const core::RuntimeConfig cfg = resil_cluster(4, 8, 2);
  core::ClusterRuntime rt(cfg);  // builds the topology for us
  const std::vector<int> cores(4, 8);
  const auto plan = core::static_ownership_plan(rt.topology(), cores);
  ASSERT_EQ(plan.size(), 4u);
  for (const auto& node_plan : plan) {
    int total = 0;
    for (const auto& [w, count] : node_plan) {
      (void)w;
      EXPECT_GE(count, 1);
      total += count;
    }
    EXPECT_EQ(total, 8);
  }
}

// --- heartbeat-mode crash detection ------------------------------------------

// Tentpole acceptance: with oracle detection disabled, a helper crash is
// *observed* — finite detection latency, every task still completes, and
// completion accounting stays exactly-once.
TEST(Resil, HeartbeatDetectsCrashAndRecovers) {
  core::RuntimeConfig cfg = resil_cluster(4, 16, 3);
  cfg.resil.detection = resil::DetectionMode::Heartbeat;
  const apps::SyntheticConfig scfg = synth(4, 8, 240, 2.5);

  apps::SyntheticWorkload wl_clean(scfg);
  const auto clean = core::ClusterRuntime(cfg).run(wl_clean);

  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  const core::WorkerId victim = rt.topology().workers_of_apprank(0)[1];
  fault::FaultInjector injector(
      fault::FaultPlan().crash_worker(victim, clean.makespan * 0.45));
  metrics::RecoverySeries recovery;
  injector.attach(rt, &recovery);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.workers_crashed, 1u);
  EXPECT_FALSE(rt.worker_alive(victim));
  EXPECT_GT(r.heartbeat_messages, 0u);

  // The failure was detected, not announced: latency is finite, positive,
  // and small (a handful of heartbeat periods).
  EXPECT_EQ(r.detections, 1u);
  EXPECT_GT(r.mean_detection_latency(), 0.0);
  EXPECT_LT(r.mean_detection_latency(), 1.0);
  ASSERT_EQ(recovery.detections().size(), 1u);
  EXPECT_TRUE(recovery.detections()[0].true_positive);
  EXPECT_NEAR(recovery.mean_detection_latency(), r.mean_detection_latency(),
              1e-12);
  EXPECT_EQ(recovery.false_positive_count(), 0);
  EXPECT_GE(r.quarantine_ejections, 1u);
  EXPECT_GT(r.tasks_reexecuted, 0u);

  expect_all_work_done(rt, r, scfg.iterations);
  // No rescued task may have ended up executing on the corpse.
  const auto& pool = rt.tasks();
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    const nanos::Task& t = pool.get(id);
    if (t.reexecutions > 0) {
      EXPECT_NE(t.executed_worker, victim);
    }
  }
}

// A crash landing exactly on an iteration boundary (while the appranks sit
// in the MPI barrier, no offloaded work in flight) must not deadlock
// on_barrier_done — in either detection mode.
TEST(Resil, CrashDuringBarrierDoesNotDeadlock) {
  const apps::SyntheticConfig scfg = synth(4, 6, 120, 2.0);
  for (const auto mode :
       {resil::DetectionMode::Oracle, resil::DetectionMode::Heartbeat}) {
    core::RuntimeConfig cfg = resil_cluster(4, 8, 2);
    cfg.resil.detection = mode;

    apps::SyntheticWorkload wl_clean(scfg);
    const auto clean = core::ClusterRuntime(cfg).run(wl_clean);
    ASSERT_GE(clean.iteration_times.size(), 2u);
    // The instant the first global barrier completes is an iteration
    // boundary; crash exactly there.
    const double boundary = clean.iteration_times[0];

    apps::SyntheticWorkload wl(scfg);
    core::ClusterRuntime rt(cfg);
    const core::WorkerId victim = rt.topology().workers_of_apprank(0)[1];
    fault::FaultInjector injector(
        fault::FaultPlan().crash_worker(victim, boundary));
    injector.attach(rt);
    const auto r = rt.run(wl);

    EXPECT_EQ(r.workers_crashed, 1u);
    EXPECT_EQ(r.iteration_times.size(), static_cast<std::size_t>(scfg.iterations))
        << "run deadlocked in mode "
        << (mode == resil::DetectionMode::Oracle ? "oracle" : "heartbeat");
    const auto& pool = rt.tasks();
    for (nanos::TaskId id = 0; id < pool.size(); ++id) {
      EXPECT_EQ(pool.get(id).state, nanos::TaskState::Finished);
    }
  }
}

// Satellite (a): crash_worker is idempotent — a second crash of the same
// worker (or a crash scheduled after the run drained) is a no-op, and
// killing the last live helper of an apprank degrades to home-only
// execution instead of wedging.
TEST(Resil, DoubleCrashAndLastHelperAreGuarded) {
  core::RuntimeConfig cfg = resil_cluster(4, 8, 2);
  cfg.resil.rewire_on_disconnect = false;  // force home-only degradation
  apps::SyntheticWorkload wl(synth(4, 6, 120, 2.0));
  core::ClusterRuntime rt(cfg);
  const core::WorkerId victim = rt.topology().workers_of_apprank(0)[1];
  ASSERT_EQ(rt.topology().workers_of_apprank(0).size(), 2u);
  fault::FaultInjector injector(fault::FaultPlan()
                                    .crash_worker(victim, 1.0)
                                    .crash_worker(victim, 1.5)    // duplicate
                                    .crash_worker(victim, 2.0));  // again
  injector.attach(rt);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.workers_crashed, 1u);  // counted exactly once
  EXPECT_EQ(r.rewired_edges, 0u);
  EXPECT_EQ(r.iteration_times.size(), 6u);
  const auto& pool = rt.tasks();
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(pool.get(id).state, nanos::TaskState::Finished);
  }
}

// --- link blackout: false suspicion, quarantine, readmission -----------------

// Tentpole acceptance: a 30 s control/app-plane blackout (huge latency,
// nothing lost) makes the home runtimes falsely suspect their helpers,
// quarantine them, absorb the work, and readmit the helpers once their
// delayed heartbeats drain — zero lost tasks, no deadlock, exactly-once.
TEST(Resil, LinkBlackoutQuarantinesAndReadmits) {
  core::RuntimeConfig cfg = resil_cluster(4, 8, 2);
  cfg.resil.detection = resil::DetectionMode::Heartbeat;
  const apps::SyntheticConfig scfg = synth(4, 10, 120, 2.0);

  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  // latency_mult turns the ~2 us link latency into ~30 s per message for
  // the duration of the window — a blackout in everything but name
  // (loss_rate 1.0 is rejected by FaultPlan by design).
  const double blackout_mult = 30.0 / cfg.cluster.link.latency;
  fault::FaultInjector injector(fault::FaultPlan().degrade_link(
      blackout_mult, 1.0, 0.0, /*at=*/2.0, /*until=*/32.0));
  metrics::RecoverySeries recovery;
  injector.attach(rt, &recovery);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.workers_crashed, 0u);
  EXPECT_EQ(r.detections, 0u);  // nobody actually died...
  EXPECT_GT(r.false_suspicions, 0u);  // ...but the silence was judged fatal
  EXPECT_GT(r.quarantine_ejections, 0u);
  EXPECT_GT(r.quarantine_readmissions, 0u);  // helpers came back
  EXPECT_EQ(recovery.false_positive_count(),
            static_cast<int>(r.false_suspicions));
  // Suspicion revoked leases whose executions were already running or
  // whose completions were in flight: their stale-epoch completions were
  // suppressed rather than double-counted.
  EXPECT_GT(r.duplicates_suppressed, 0u);

  expect_all_work_done(rt, r, scfg.iterations);
  // Note: some workers may legitimately still sit in a quarantine cooldown
  // window at the instant the run drains (flapping pays growing cooldowns);
  // the readmission counter above proves the probe-back path ran.
}

// Heartbeat-mode runs remain a pure function of the seed.
TEST(Resil, HeartbeatRunsAreDeterministic) {
  auto run_once = [](core::ClusterRuntime& rt) {
    apps::SyntheticWorkload wl(synth(4, 6, 120, 2.0));
    fault::FaultInjector injector(
        fault::FaultPlan()
            .lose_messages(0.10, 0.5, 2.5)
            .crash_worker(rt.topology().workers_of_apprank(0)[1], 1.5));
    injector.attach(rt);
    return rt.run(wl);
  };
  core::RuntimeConfig cfg = resil_cluster(4, 8, 2);
  cfg.resil.detection = resil::DetectionMode::Heartbeat;
  core::ClusterRuntime rt_a(cfg);
  core::ClusterRuntime rt_b(cfg);
  const auto a = run_once(rt_a);
  const auto b = run_once(rt_b);

  EXPECT_EQ(a.makespan, b.makespan);  // bitwise
  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.heartbeat_messages, b.heartbeat_messages);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.detection_latency_sum, b.detection_latency_sum);  // bitwise
  EXPECT_EQ(a.lease_retransmits, b.lease_retransmits);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted);
  EXPECT_EQ(rt_a.recorder().marks(), rt_b.recorder().marks());
}

// --- solver fallback chain ---------------------------------------------------

/// Several equally-overloaded ranks competing for the same sparse helper
/// pool. A single heavy rank (as the synthetic generator produces) makes
/// the solver's lower bound feasible outright — bisection only runs when a
/// *joint* cut binds, which needs at least two heavy neighbourhoods.
class ContendedWorkload final : public core::Workload {
 public:
  ContendedWorkload(int appranks, int iterations, int tasks, int heavy_ranks)
      : appranks_(appranks),
        iterations_(iterations),
        tasks_(tasks),
        heavy_ranks_(heavy_ranks) {}
  [[nodiscard]] int iteration_count() const override { return iterations_; }
  std::vector<core::TaskSpec> make_tasks(int apprank, int) override {
    const double mean = apprank < heavy_ranks_ ? 0.200 : 0.010;
    std::vector<core::TaskSpec> specs(static_cast<std::size_t>(tasks_));
    for (auto& spec : specs) spec.work = mean;
    return specs;
  }

 private:
  int appranks_;
  int iterations_;
  int tasks_;
  int heavy_ranks_;
};

TEST(Resil, SolverIterationBudgetDownshiftsToLocal) {
  // A one-iteration bisection budget cannot converge, so the global tick
  // falls back to the local convergence plan and says so in the trace.
  core::RuntimeConfig cfg = resil_cluster(6, 8, 2);
  cfg.resil.solver_iteration_budget = 1;
  // 4 heavy ranks x 8 core-seconds on 6x8 cores: at the bisection lower
  // bound the joint extra demand (~38.8 cores) exceeds the total residual
  // capacity (36), so the initial feasibility shortcut can never fire.
  ContendedWorkload wl(6, 8, 40, /*heavy_ranks=*/4);
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  EXPECT_GE(r.policy_downshifts, 1u);
  const auto& marks = rt.recorder().marks();
  const bool downshifted =
      std::any_of(marks.begin(), marks.end(), [](const auto& m) {
        return m.second.find("policy downshift: global -> local") !=
               std::string::npos;
      });
  EXPECT_TRUE(downshifted);
  EXPECT_EQ(r.iteration_times.size(), 8u);  // the run still balances
}

TEST(Resil, SolverTimeBudgetDownshiftsToLocal) {
  core::RuntimeConfig cfg = resil_cluster(4, 16, 3);
  cfg.solver_latency = 0.05;            // modelled solve cost
  cfg.resil.solver_time_budget = 0.01;  // tighter than the solver is
  apps::SyntheticWorkload wl(synth(4, 8, 240, 2.0));
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  EXPECT_GE(r.policy_downshifts, 1u);
  EXPECT_EQ(r.iteration_times.size(), 8u);
}

TEST(Resil, DefaultBudgetsNeverDownshift) {
  core::RuntimeConfig cfg = resil_cluster(4, 16, 3);
  apps::SyntheticWorkload wl(synth(4, 6, 120, 2.0));
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  EXPECT_EQ(r.policy_downshifts, 0u);
}

// --- expander rewire ---------------------------------------------------------

// When a crash disconnects an apprank from its only helper, a replacement
// helper edge is added (graph, topology, control plane, DLB state all
// grow) and offloading continues on the new edge.
TEST(Resil, CrashDisconnectingApprankRewiresExpander) {
  core::RuntimeConfig cfg = resil_cluster(4, 8, 2);
  apps::SyntheticWorkload wl(synth(4, 8, 160, 2.5));
  core::ClusterRuntime rt(cfg);
  const int workers_before = rt.topology().worker_count();
  const core::WorkerId victim = rt.topology().workers_of_apprank(0)[1];
  const int victim_node = rt.topology().worker(victim).node;
  fault::FaultInjector injector(fault::FaultPlan().crash_worker(victim, 1.5));
  injector.attach(rt);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.rewired_edges, 1u);
  EXPECT_EQ(rt.topology().worker_count(), workers_before + 1);
  ASSERT_EQ(rt.topology().workers_of_apprank(0).size(), 3u);
  const core::WorkerId fresh = rt.topology().workers_of_apprank(0)[2];
  EXPECT_FALSE(rt.topology().worker(fresh).is_home);
  EXPECT_NE(rt.topology().worker(fresh).node, victim_node);
  EXPECT_TRUE(rt.offload_graph().has_edge(0, rt.topology().worker(fresh).node));
  EXPECT_TRUE(rt.worker_alive(fresh));

  // The replacement actually executed offloaded work for apprank 0.
  const auto& pool = rt.tasks();
  bool fresh_executed = false;
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    const nanos::Task& t = pool.get(id);
    EXPECT_EQ(t.state, nanos::TaskState::Finished);
    if (t.executed_worker == fresh) fresh_executed = true;
  }
  EXPECT_TRUE(fresh_executed);
  EXPECT_EQ(r.iteration_times.size(), 8u);
}

}  // namespace
}  // namespace tlb
