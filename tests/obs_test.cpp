// Tests of the observability subsystem (tlb::obs): metrics registry and
// histogram quantile edge cases, Chrome trace export invariants (valid
// JSON, monotone timestamps, B/E pairing), POP efficiency agreement with
// TALP, critical-path breakdown, typed trace marks / Paraver export, and
// the determinism contract (span collection keeps schedules bit-identical
// to the golden fingerprints).
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/pop.hpp"
#include "obs/span.hpp"
#include "trace/paraver.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace tlb;

// --- histogram ---------------------------------------------------------------

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
}

TEST(Histogram, EmptyQuantileIsZero) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleQuantileIsExact) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.add(1.7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.7);
  EXPECT_DOUBLE_EQ(h.mean(), 1.7);
}

TEST(Histogram, SaturatedTopBucketClampsToObservedMax) {
  // Every sample lands in the overflow bucket (no finite upper edge): the
  // quantile must clamp to the observed max, never report infinity.
  obs::Histogram h({1.0});
  h.add(10.0);
  h.add(20.0);
  h.add(30.0);
  EXPECT_EQ(h.buckets().back(), 3u);
  EXPECT_LE(h.quantile(0.99), 30.0);
  EXPECT_GE(h.quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
}

TEST(Histogram, QuantileInterpolatesAndIsMonotone) {
  obs::Histogram h({1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 100; ++i) h.add(0.5 + 3.0 * i / 99.0);  // [0.5, 3.5]
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0001; q += 0.1) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(h.quantile(0.5), 2.0, 0.25);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, SharesMetricsByNameAndRejectsKindMismatch) {
  obs::Registry reg;
  reg.counter("a").inc(2);
  reg.counter("a").inc(3);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  reg.gauge("g").set(1.5);
  EXPECT_THROW(reg.gauge("a"), std::logic_error);
  EXPECT_THROW(reg.counter("g"), std::logic_error);
  EXPECT_EQ(reg.find_counter("a")->value(), 5u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
}

TEST(Registry, ToJsonIsWellFormedAndOrdered) {
  obs::Registry reg;
  reg.counter("z.second");
  reg.counter("a.first").inc(7);
  reg.gauge("g").set(0.25);
  reg.histogram("h", {1.0, 2.0}).add(1.5);
  const std::string j = reg.to_json();
  // Registration order, not name order.
  EXPECT_LT(j.find("z.second"), j.find("a.first"));
  EXPECT_NE(j.find("\"a.first\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"g\": 0.25"), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
  // Balanced braces, single root object.
  int depth = 0;
  for (char c : j) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- golden fingerprints (determinism contract) -------------------------------

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::uint64_t schedule_fingerprint(const core::ClusterRuntime& rt,
                                   const core::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const nanos::TaskPool& pool = rt.tasks();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const nanos::Task& t = pool.get(static_cast<nanos::TaskId>(i));
    h = fp_mix(h, t.id);
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.scheduled_node)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_worker)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_core)));
    h = fp_mix(h, static_cast<std::uint64_t>(t.executions));
    h = fp_mix(h, bits_of(t.start_at));
    h = fp_mix(h, bits_of(t.finish_at));
  }
  h = fp_mix(h, bits_of(r.makespan));
  h = fp_mix(h, r.events_fired);
  return h;
}

// Captured in tests/sched_test.cpp from the pre-obs binary; span
// collection must not move them (it records, it never schedules).
constexpr std::uint64_t kGoldenPlain = 0x5515139c5bf2c300ull;
constexpr std::uint64_t kGoldenNet = 0xb613ed57f79b2e8aull;

core::RuntimeConfig plain_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 2;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig plain_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 1.8;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 40;
  return cfg;
}

core::RuntimeConfig net_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  return cfg;
}

apps::SyntheticConfig net_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.iterations = 2;
  cfg.tasks_per_rank = 24;
  cfg.imbalance = 2.0;
  cfg.bytes_per_task = 1 << 20;
  return cfg;
}

TEST(ObsDeterminism, SpanCollectionKeepsPlainScheduleBitIdentical) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
  ASSERT_NE(rt.spans(), nullptr);
  EXPECT_EQ(rt.spans()->spans().size(), rt.tasks().size());
}

TEST(ObsDeterminism, SpanCollectionKeepsNetScheduleBitIdentical) {
  core::RuntimeConfig cfg = net_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(cfg);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenNet);
}

// --- span lifecycle ----------------------------------------------------------

TEST(Spans, EveryTaskGetsACompleteLifecycle) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  ASSERT_NE(rt.spans(), nullptr);
  const auto& spans = rt.spans()->spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(r.tasks_total));
  for (const auto& s : spans) {
    EXPECT_NE(s.id, nanos::kNoTask);
    EXPECT_GE(s.created_at, 0.0);
    EXPECT_GE(s.ready_at, s.created_at);
    EXPECT_GE(s.done_at, s.ready_at);
    ASSERT_FALSE(s.attempts.empty());
    const auto* at = s.final_attempt();
    EXPECT_GE(at->scheduled_at, s.ready_at);
    EXPECT_GE(at->exec_start, at->scheduled_at);
    EXPECT_GE(at->exec_end, at->exec_start);
    EXPECT_LE(at->exec_end, s.done_at);
    EXPECT_FALSE(at->rescued);
  }
}

// --- Chrome trace export -----------------------------------------------------

TEST(ChromeTrace, TimestampsMonotoneAndBeginEndPaired) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  rt.run(wl);
  const auto events = obs::chrome_events(
      *rt.spans(), rt.topology().node_count(), rt.topology().apprank_count());
  ASSERT_FALSE(events.empty());
  std::int64_t last_ts = 0;
  std::map<std::string, int> open;  // (pid, tid, name) -> open B count
  int durations = 0;
  for (const auto& e : events) {
    if (e.ph == 'M') continue;  // metadata precedes the timeline
    EXPECT_GE(e.ts_us, last_ts);
    last_ts = e.ts_us;
    const std::string key = std::to_string(e.pid) + "/" +
                            std::to_string(e.tid) + "/" + e.name;
    if (e.ph == 'B') {
      ++open[key];
      ++durations;
    } else if (e.ph == 'E') {
      EXPECT_GT(open[key], 0) << "E without matching B: " << key;
      --open[key];
    }
  }
  EXPECT_GT(durations, 0);
  for (const auto& [key, n] : open) {
    EXPECT_EQ(n, 0) << "unclosed B: " << key;
  }
}

TEST(ChromeTrace, JsonIsBalancedAndEscaped) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  rt.run(wl);
  const std::string j = obs::chrome_trace_json(
      *rt.spans(), rt.topology().node_count(), rt.topology().apprank_count());
  EXPECT_EQ(j.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(j.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control character at offset " << i;
    if (c == '"' && (i == 0 || j[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// --- POP efficiency report ---------------------------------------------------

TEST(Pop, ParallelEfficiencyMatchesTalpAggregate) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  const obs::PopReport pop = rt.pop();

  double total_busy = 0.0;
  for (int w = 0; w < rt.talp().worker_count(); ++w) {
    total_busy += rt.talp().busy_core_seconds(w);
  }
  const double total_cores = 4 * 8;
  const double talp_pe = total_busy / (total_cores * r.makespan);
  EXPECT_NEAR(pop.parallel_efficiency, talp_pe, 1e-9);

  EXPECT_GT(pop.parallel_efficiency, 0.0);
  EXPECT_LE(pop.parallel_efficiency, 1.0 + 1e-9);
  EXPECT_GT(pop.load_balance, 0.0);
  EXPECT_LE(pop.load_balance, 1.0 + 1e-9);
  // The multiplicative POP model: PE = LB x CommE.
  EXPECT_NEAR(pop.parallel_efficiency,
              pop.load_balance * pop.communication_efficiency, 1e-9);
  // No fabric + spans on: transfer waits exist but stay a small fraction.
  EXPECT_LE(pop.transfer_efficiency, 1.0 + 1e-9);
  EXPECT_GT(pop.transfer_efficiency, 0.5);
  ASSERT_EQ(pop.appranks.size(), 8u);
  double busy_sum = 0.0;
  for (const auto& row : pop.appranks) busy_sum += row.busy_core_seconds;
  EXPECT_NEAR(busy_sum, total_busy, 1e-9);
  const std::string rendered = obs::render_pop(pop);
  EXPECT_NE(rendered.find("parallel efficiency"), std::string::npos);
}

TEST(Pop, RegistryGaugesMirrorTheReport) {
  core::RuntimeConfig cfg = plain_config();
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  const obs::PopReport pop = rt.pop();
  const obs::Gauge* pe = rt.metrics().find_gauge("pop.parallel_efficiency");
  ASSERT_NE(pe, nullptr);
  EXPECT_DOUBLE_EQ(pe->value(), pop.parallel_efficiency);
  const obs::Counter* msgs =
      rt.metrics().find_counter("core.control_messages");
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->value(), r.control_messages);
  const obs::Counter* tasks = rt.metrics().find_counter("core.tasks_total");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value(), r.tasks_total);
}

// --- per-iteration POP windows -----------------------------------------------

TEST(PopWindows, OneWellFormedRowPerIteration) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.pop_windows = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  const auto& rows = rt.pop_windows();
  ASSERT_EQ(rows.size(), 3u);  // one per iteration
  double prev_end = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::PopWindowRow& w = rows[i];
    EXPECT_EQ(w.epoch, static_cast<int>(i));
    // Windows tile the run: contiguous, non-empty, ending at the makespan.
    EXPECT_DOUBLE_EQ(w.t_begin, prev_end);
    EXPECT_GT(w.t_end, w.t_begin);
    prev_end = w.t_end;
    EXPECT_GT(w.parallel_efficiency, 0.0);
    EXPECT_LE(w.parallel_efficiency, 1.0 + 1e-9);
    EXPECT_GT(w.load_balance, 0.0);
    EXPECT_LE(w.load_balance, 1.0 + 1e-9);
    EXPECT_NEAR(w.parallel_efficiency,
                w.load_balance * w.communication_efficiency, 1e-9);
  }
  EXPECT_NEAR(prev_end, r.makespan, 1e-9);
}

TEST(PopWindows, BusyDeltasSumToTalpTotals) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.pop_windows = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  rt.run(wl);
  // Integrating PE over the windows recovers the whole-run busy total.
  const double total_cores = 4 * 8;
  double windowed_busy = 0.0;
  for (const auto& w : rt.pop_windows()) {
    windowed_busy += w.parallel_efficiency * total_cores * (w.t_end - w.t_begin);
  }
  double talp_busy = 0.0;
  for (int wk = 0; wk < rt.talp().worker_count(); ++wk) {
    talp_busy += rt.talp().busy_core_seconds(wk);
  }
  EXPECT_NEAR(windowed_busy, talp_busy, 1e-6);
}

TEST(PopWindows, RecordingKeepsTheScheduleBitIdentical) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.pop_windows = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
}

TEST(PopWindows, OffByDefaultAndRenderable) {
  core::RuntimeConfig cfg = plain_config();
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  rt.run(wl);
  EXPECT_TRUE(rt.pop_windows().empty());

  std::vector<obs::PopWindowRow> rows(2);
  rows[0] = {0, 0.0, 1.0, 0.8, 0.9, 0.8 / 0.9};
  rows[1] = {1, 1.0, 2.5, 0.6, 0.7, 0.6 / 0.7};
  const std::string rendered = obs::render_pop_windows(rows);
  EXPECT_NE(rendered.find("epoch"), std::string::npos);
  EXPECT_NE(rendered.find("80.0"), std::string::npos);  // PE as percentage
}

// --- critical path -----------------------------------------------------------

TEST(CriticalPath, BreakdownSumsToLength) {
  core::RuntimeConfig cfg = plain_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  const obs::CriticalPath cp = obs::critical_path(rt.tasks(), *rt.spans());
  ASSERT_FALSE(cp.chain.empty());
  EXPECT_GT(cp.length, 0.0);
  EXPECT_LE(cp.length, r.makespan + 1e-9);
  EXPECT_GE(cp.compute, 0.0);
  EXPECT_GE(cp.transfer, 0.0);
  EXPECT_GE(cp.wait, 0.0);
  EXPECT_NEAR(cp.compute + cp.transfer + cp.wait, cp.length, 1e-9);
  EXPECT_GT(cp.compute, 0.0);
  // The chain walks forward in completion time.
  double prev = -1.0;
  for (const nanos::TaskId id : cp.chain) {
    const double d = rt.spans()->span(id).done_at;
    EXPECT_GE(d, prev);
    prev = d;
  }
  const std::string rendered = obs::render_critical_path(cp);
  EXPECT_NE(rendered.find("Critical path"), std::string::npos);
}

TEST(CriticalPath, EmptyCollectorYieldsEmptyPath) {
  nanos::TaskPool pool;
  obs::SpanCollector spans;
  const obs::CriticalPath cp = obs::critical_path(pool, spans);
  EXPECT_EQ(cp.length, 0.0);
  EXPECT_TRUE(cp.chain.empty());
}

// --- typed trace marks / ASCII rendering -------------------------------------

TEST(RecorderMarks, AsciiMarksRenderCountsPerBin) {
  std::vector<std::pair<sim::SimTime, std::string>> marks;
  marks.emplace_back(0.05, "single");
  for (int i = 0; i < 3; ++i) marks.emplace_back(0.15, "triple");
  for (int i = 0; i < 12; ++i) marks.emplace_back(0.25, "dozen");
  const std::string row = trace::ascii_marks(marks, 0.0, 1.0, 10);
  ASSERT_EQ(row.size(), 10u);
  EXPECT_EQ(row[0], '^');
  EXPECT_EQ(row[1], '3');
  EXPECT_EQ(row[2], '#');
  EXPECT_EQ(row[3], ' ');
}

TEST(RecorderMarks, OutOfOrderMarkAssertsInDebugAndClampsInRelease) {
  trace::Recorder rec(1, 1);
  rec.mark(1.0, "first");
  EXPECT_DEBUG_DEATH(rec.mark(0.5, "earlier"), "");
#ifdef NDEBUG
  // Release build: the statement above executed and clamped.
  ASSERT_EQ(rec.marks().size(), 2u);
  EXPECT_EQ(rec.marks()[1].first, 1.0);
  EXPECT_EQ(rec.marks()[1].second, "earlier");
#endif
}

TEST(RecorderMarks, TypedMarksCarryKindAndValue) {
  trace::Recorder rec(2, 1);
  rec.mark(0.5, "net congestion: spine0", trace::MarkKind::NetCongestion, 7);
  rec.mark(0.9, "net cleared: spine0", trace::MarkKind::NetCleared, 7);
  ASSERT_EQ(rec.marks().size(), 2u);  // the labelled channel sees both
  ASSERT_EQ(rec.typed_marks().size(), 2u);
  EXPECT_EQ(rec.typed_marks()[0].kind, trace::MarkKind::NetCongestion);
  EXPECT_EQ(rec.typed_marks()[0].value, 7);
  EXPECT_EQ(rec.typed_marks()[1].kind, trace::MarkKind::NetCleared);
}

TEST(Paraver, TypedMarksExportAsDedicatedEventTypes) {
  trace::Recorder rec(1, 1);
  rec.busy_delta(0.0, 0, 0, 1);
  rec.mark(0.25, "sched steer: task 3 -> worker 2",
           trace::MarkKind::SchedSteer, 2);
  rec.mark(0.5, "net congestion: nic0", trace::MarkKind::NetCongestion, 0);
  rec.mark(0.75, "plain mark");  // Generic: labelled channel only
  const std::string prv = trace::to_paraver(rec, 1.0);
  EXPECT_NE(prv.find(":90000003:2\n"), std::string::npos);
  EXPECT_NE(prv.find(":90000005:0\n"), std::string::npos);
  EXPECT_EQ(prv.find("90000004"), std::string::npos);

  const std::string pcf = trace::paraver_pcf();
  for (int type = 90000001; type <= 90000006; ++type) {
    EXPECT_NE(pcf.find(std::to_string(type)), std::string::npos)
        << "pcf misses event type " << type;
  }
  EXPECT_NE(pcf.find("EVENT_TYPE"), std::string::npos);
}

// --- fabric congestion events ------------------------------------------------

TEST(Spans, NetModeRecordsTransfersAndCongestionInstants) {
  core::RuntimeConfig cfg = net_config();
  cfg.obs.spans = true;
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(cfg);
  rt.run(wl);
  ASSERT_NE(rt.spans(), nullptr);
  bool saw_transfer = false;
  for (const auto& s : rt.spans()->spans()) {
    const auto* at = s.final_attempt();
    if (at != nullptr && at->transfer_start >= 0.0) {
      EXPECT_GE(at->transfer_end, at->transfer_start);
      EXPECT_GT(at->transfer_bytes, 0u);
      saw_transfer = true;
    }
  }
  EXPECT_TRUE(saw_transfer);
  EXPECT_GT(rt.spans()->transfer_wait_core_seconds(), 0.0);
}

}  // namespace
