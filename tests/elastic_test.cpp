// Tests of the elasticity subsystem (tlb::elastic): the hysteresis scale
// controller, the xDS-style hot-swap control plane, the ClusterRuntime
// grow_node / retire_node hooks (crash-recovery rewire run in reverse),
// and the svc::JobManager powered-node pool with its node-seconds
// billing. Also pins the inertness contract: an elastic config with
// enabled=false must leave every run bit-identical to one that never
// heard of the subsystem.
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "elastic/controller.hpp"
#include "elastic/xds.hpp"
#include "sim/engine.hpp"
#include "svc/job_manager.hpp"

namespace {

using namespace tlb;

// --- ElasticController -------------------------------------------------------

elastic::ElasticConfig controller_config() {
  elastic::ElasticConfig e;
  e.enabled = true;
  e.min_nodes = 2;
  e.max_nodes = 6;
  e.eval_period = 0.1;
  e.high_pressure = 1.0;
  e.low_pressure = 0.5;
  e.sustain_ticks = 2;
  e.idle_ticks = 3;
  e.cooldown = 0.5;
  e.step = 1;
  return e;
}

TEST(ElasticController, ScaleOutNeedsSustainedPressure) {
  elastic::ElasticController c(controller_config());
  EXPECT_EQ(c.observe(0.0, 1.5, 4), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.1, 1.5, 4), elastic::ScaleDecision::Out);
  EXPECT_EQ(c.scale_out_decisions(), 1u);
}

TEST(ElasticController, DeadBandResetsBothStreaks) {
  elastic::ElasticController c(controller_config());
  EXPECT_EQ(c.observe(0.0, 1.5, 4), elastic::ScaleDecision::Hold);
  // One in-band sample wipes the high streak: the evidence must be
  // consecutive, not merely frequent.
  EXPECT_EQ(c.observe(0.1, 0.8, 4), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.2, 1.5, 4), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.3, 1.5, 4), elastic::ScaleDecision::Out);
}

TEST(ElasticController, ScaleInNeedsIdleTicks) {
  elastic::ElasticController c(controller_config());
  EXPECT_EQ(c.observe(0.0, 0.1, 4), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.1, 0.1, 4), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.2, 0.1, 4), elastic::ScaleDecision::In);
  EXPECT_EQ(c.scale_in_decisions(), 1u);
}

TEST(ElasticController, CooldownSeparatesActions) {
  elastic::ElasticController c(controller_config());
  ASSERT_EQ(c.observe(0.0, 1.5, 4), elastic::ScaleDecision::Hold);
  ASSERT_EQ(c.observe(0.1, 1.5, 4), elastic::ScaleDecision::Out);
  // Pressure stays high, but the 0.5 s cooldown gates the next action.
  EXPECT_EQ(c.observe(0.2, 1.5, 5), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.4, 1.5, 5), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.6, 1.5, 5), elastic::ScaleDecision::Out);
}

TEST(ElasticController, BoundsClampDecisions) {
  elastic::ElasticController c(controller_config());
  // At max_nodes a sustained-high streak yields Hold, not Out.
  ASSERT_EQ(c.observe(0.0, 1.5, 6), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.1, 1.5, 6), elastic::ScaleDecision::Hold);
  // At min_nodes a long idle streak yields Hold, not In.
  elastic::ElasticController d(controller_config());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(d.observe(0.1 * i, 0.0, 2), elastic::ScaleDecision::Hold)
        << "tick " << i;
  }
  EXPECT_EQ(d.scale_in_decisions(), 0u);
}

TEST(ElasticController, SetBoundsValidatesAndApplies) {
  elastic::ElasticController c(controller_config());
  EXPECT_THROW(c.set_bounds(0, 4), std::invalid_argument);
  EXPECT_THROW(c.set_bounds(5, 4), std::invalid_argument);
  c.set_bounds(3, 8);
  EXPECT_EQ(c.min_nodes(), 3);
  EXPECT_EQ(c.max_nodes(), 8);
  // The new ceiling takes effect: 6 active nodes may now scale out.
  ASSERT_EQ(c.observe(0.0, 1.5, 6), elastic::ScaleDecision::Hold);
  EXPECT_EQ(c.observe(0.1, 1.5, 6), elastic::ScaleDecision::Out);
}

TEST(ElasticController, RejectsInvalidConfigs) {
  auto bad = controller_config();
  bad.min_nodes = 0;
  EXPECT_THROW(elastic::ElasticController{bad}, std::invalid_argument);
  bad = controller_config();
  bad.min_nodes = 7;  // > max_nodes
  EXPECT_THROW(elastic::ElasticController{bad}, std::invalid_argument);
  bad = controller_config();
  bad.low_pressure = 1.5;  // >= high_pressure
  EXPECT_THROW(elastic::ElasticController{bad}, std::invalid_argument);
  bad = controller_config();
  bad.sustain_ticks = 0;
  EXPECT_THROW(elastic::ElasticController{bad}, std::invalid_argument);
  bad = controller_config();
  bad.eval_period = 0.0;
  EXPECT_THROW(elastic::ElasticController{bad}, std::invalid_argument);
}

// --- ControlPlane ------------------------------------------------------------

TEST(ControlPlane, AckAndVersionDiscipline) {
  elastic::ControlPlane cp;
  std::vector<std::string> applied;
  cp.subscribe("t", [&](const elastic::Resource& r) {
    applied.push_back(r.payload);
    return std::string{};
  });
  EXPECT_EQ(cp.push({"t", 1, "a"}).status, elastic::PushStatus::Acked);
  // Replays and regressions are rejected without invoking the applier.
  EXPECT_EQ(cp.push({"t", 1, "b"}).status, elastic::PushStatus::StaleVersion);
  EXPECT_EQ(cp.push({"t", 0, "c"}).status, elastic::PushStatus::StaleVersion);
  EXPECT_EQ(cp.push({"t", 5, "d"}).status, elastic::PushStatus::Acked);
  ASSERT_EQ(applied, (std::vector<std::string>{"a", "d"}));
  ASSERT_TRUE(cp.last_acked("t").has_value());
  EXPECT_EQ(cp.last_acked("t")->version, 5u);
  EXPECT_EQ(cp.pushes(), 4u);
  EXPECT_EQ(cp.acks(), 2u);
  EXPECT_EQ(cp.nacks(), 0u);  // stale is not a NACK: the applier never ran
}

TEST(ControlPlane, NackRollsBackToLastAcked) {
  elastic::ControlPlane cp;
  std::vector<std::string> applied;
  cp.subscribe("t", [&](const elastic::Resource& r) -> std::string {
    if (r.payload == "bad") return "rejected";
    applied.push_back(r.payload);
    return "";
  });
  ASSERT_EQ(cp.push({"t", 1, "good"}).status, elastic::PushStatus::Acked);
  const elastic::PushResult nack = cp.push({"t", 2, "bad"});
  EXPECT_EQ(nack.status, elastic::PushStatus::Nacked);
  EXPECT_EQ(nack.detail, "rejected");
  EXPECT_TRUE(nack.rolled_back);
  // The rollback re-applied the previously acked payload.
  EXPECT_EQ(applied, (std::vector<std::string>{"good", "good"}));
  EXPECT_EQ(cp.rollbacks(), 1u);
  // The acked version is unchanged, so a corrected v3 still applies.
  EXPECT_EQ(cp.last_acked("t")->version, 1u);
  EXPECT_EQ(cp.push({"t", 3, "fixed"}).status, elastic::PushStatus::Acked);
}

TEST(ControlPlane, FirstPushNackHasNothingToRollBack) {
  elastic::ControlPlane cp;
  cp.subscribe("t", [](const elastic::Resource&) { return "no"; });
  const elastic::PushResult r = cp.push({"t", 1, "x"});
  EXPECT_EQ(r.status, elastic::PushStatus::Nacked);
  EXPECT_FALSE(r.rolled_back);
  EXPECT_FALSE(cp.last_acked("t").has_value());
}

TEST(ControlPlane, UnknownTypeAndDuplicateSubscription) {
  elastic::ControlPlane cp;
  EXPECT_EQ(cp.push({"nope", 1, ""}).status, elastic::PushStatus::UnknownType);
  cp.subscribe("t", [](const elastic::Resource&) { return ""; });
  EXPECT_THROW(
      cp.subscribe("t", [](const elastic::Resource&) { return ""; }),
      std::invalid_argument);
}

TEST(ControlPlane, KvParsersAreStrict) {
  const auto kv = elastic::parse_kv("a=1 b=2.5  c=x");
  EXPECT_EQ(kv.at("a"), "1");
  EXPECT_EQ(kv.at("c"), "x");
  EXPECT_THROW(elastic::parse_kv("novalue"), std::invalid_argument);
  EXPECT_EQ(elastic::kv_int(kv, "a", -1), 1);
  EXPECT_EQ(elastic::kv_int(kv, "missing", -1), -1);  // fallback
  EXPECT_DOUBLE_EQ(elastic::kv_double(kv, "b", 0.0), 2.5);
  // Partial tokens must not parse: "x" is not an int, "2.5" not an int.
  EXPECT_THROW((void)elastic::kv_int(kv, "c", 0), std::invalid_argument);
  EXPECT_THROW((void)elastic::kv_int(kv, "b", 0), std::invalid_argument);
}

// --- ClusterRuntime grow_node / retire_node ----------------------------------

core::RuntimeConfig small_cluster() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(3, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  cfg.seed = 11;
  cfg.record_traces = false;
  return cfg;
}

apps::SyntheticConfig small_app() {
  apps::SyntheticConfig app;
  app.appranks = 3;
  app.iterations = 6;
  app.tasks_per_rank = 60;
  app.imbalance = 2.0;
  return app;
}

TEST(RuntimeElastic, GrowBeforeStartThrows) {
  core::ClusterRuntime rt(small_cluster());
  sim::NodeSpec spec;
  spec.cores = 4;
  EXPECT_THROW(rt.grow_node(spec), std::logic_error);
}

TEST(RuntimeElastic, RetireApprankNodeThrows) {
  sim::Engine engine;
  core::ClusterRuntime rt(small_cluster(), &engine);
  apps::SyntheticConfig app = small_app();
  apps::SyntheticWorkload wl(app);
  rt.start(wl);
  EXPECT_THROW(rt.retire_node(0), std::invalid_argument);
  engine.run();
  (void)rt.finalize();
}

TEST(RuntimeElastic, GrowAndRetireMidRunPreserveExactlyOnce) {
  sim::Engine engine;
  core::ClusterRuntime rt(small_cluster(), &engine);
  apps::SyntheticConfig app = small_app();
  apps::SyntheticWorkload wl(app);
  bool done = false;
  rt.start(wl, [&] { done = true; });

  sim::NodeSpec spec;
  spec.cores = 4;
  int grown = -1;
  engine.at(0.3, [&] {
    if (!done) grown = rt.grow_node(spec);
  });
  engine.at(1.2, [&] {
    if (!done && grown >= 0 && !rt.node_retired(grown)) {
      rt.retire_node(grown);
    }
  });
  engine.run();
  const core::RunResult r = rt.finalize();

  ASSERT_TRUE(done);
  ASSERT_GE(grown, 0);
  EXPECT_EQ(rt.grown_nodes(), std::vector<int>{grown});
  ASSERT_EQ(r.iteration_times.size(),
            static_cast<std::size_t>(app.iterations));
  // Exactly-once execution across join and leave: every task finished,
  // re-executions only account for rescued assignments.
  const auto& pool = rt.tasks();
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    const nanos::Task& t = pool.get(id);
    ASSERT_EQ(t.state, nanos::TaskState::Finished) << "task " << id;
    ASSERT_GE(t.executions, 1) << "task " << id;
    ASSERT_LE(t.executions, 1 + t.reexecutions) << "task " << id;
  }
  EXPECT_EQ(rt.outstanding_leases(), 0u);
  for (int w = 0; w < rt.topology().worker_count(); ++w) {
    EXPECT_EQ(rt.worker_pending(w), 0) << "worker " << w;
    EXPECT_EQ(rt.worker_inflight(w), 0) << "worker " << w;
  }
}

TEST(RuntimeElastic, ElasticTickGrowsUnderPressure) {
  core::RuntimeConfig cfg = small_cluster();
  cfg.elastic.enabled = true;
  cfg.elastic.min_nodes = 3;
  cfg.elastic.max_nodes = 5;
  cfg.elastic.eval_period = 0.05;
  cfg.elastic.high_pressure = 0.5;  // backlogged tasks per core
  cfg.elastic.low_pressure = 0.1;
  cfg.elastic.sustain_ticks = 1;
  cfg.elastic.idle_ticks = 4;
  cfg.elastic.cooldown = 0.1;
  cfg.elastic.step = 1;

  apps::SyntheticConfig app = small_app();
  app.tasks_per_rank = 120;  // enough backlog to sustain the pressure
  apps::SyntheticWorkload wl(app);

  core::ClusterRuntime rt(cfg);
  const core::RunResult r = rt.run(wl);
  EXPECT_FALSE(rt.grown_nodes().empty());
  EXPECT_LE(static_cast<int>(rt.grown_nodes().size()), 2);  // max - initial
  ASSERT_EQ(r.iteration_times.size(),
            static_cast<std::size_t>(app.iterations));
  const auto& pool = rt.tasks();
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    ASSERT_EQ(pool.get(id).state, nanos::TaskState::Finished) << id;
  }
}

TEST(RuntimeElastic, DisabledConfigIsInert) {
  apps::SyntheticConfig app = small_app();

  apps::SyntheticWorkload wl_a(app);
  core::ClusterRuntime rt_a(small_cluster());
  const core::RunResult ra = rt_a.run(wl_a);

  // enabled=false with wild knobs must not read any of them: the run is
  // bit-identical to the default config.
  core::RuntimeConfig cfg = small_cluster();
  cfg.elastic.enabled = false;
  cfg.elastic.min_nodes = 5;
  cfg.elastic.max_nodes = 9;
  cfg.elastic.eval_period = 0.01;
  cfg.elastic.high_pressure = 0.01;
  apps::SyntheticWorkload wl_b(app);
  core::ClusterRuntime rt_b(cfg);
  const core::RunResult rb = rt_b.run(wl_b);

  EXPECT_EQ(ra.makespan, rb.makespan);  // bitwise
  ASSERT_EQ(ra.iteration_times.size(), rb.iteration_times.size());
  for (std::size_t i = 0; i < ra.iteration_times.size(); ++i) {
    EXPECT_EQ(ra.iteration_times[i], rb.iteration_times[i]);
  }
  EXPECT_EQ(ra.tasks_total, rb.tasks_total);
  EXPECT_EQ(ra.tasks_offloaded, rb.tasks_offloaded);
  EXPECT_EQ(ra.control_messages, rb.control_messages);
  EXPECT_TRUE(rt_b.grown_nodes().empty());
}

// --- JobManager powered-node pool --------------------------------------------

core::RuntimeConfig service_base(double rate, double horizon) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.policy = core::PolicyKind::Global;
  cfg.seed = 77;
  cfg.record_traces = false;
  cfg.svc.enabled = true;
  cfg.svc.arrivals.rate = rate;
  cfg.svc.arrivals.horizon = horizon;
  svc::JobTemplate tpl;
  tpl.nodes = 2;
  tpl.degree = 2;
  tpl.iterations = 2;
  tpl.tasks_per_rank = 16;
  tpl.base_duration = 0.050;
  tpl.imbalance = 1.5;
  tpl.deadline_class = 0;
  tpl.deadline = 5.0;
  cfg.svc.templates = {tpl};
  return cfg;
}

elastic::ElasticConfig pool_config() {
  elastic::ElasticConfig e;
  e.enabled = true;
  e.min_nodes = 2;
  e.max_nodes = 4;
  e.eval_period = 0.05;
  e.high_pressure = 0.95;
  e.low_pressure = 0.5;
  e.sustain_ticks = 1;
  e.idle_ticks = 4;
  e.cooldown = 0.1;
  e.step = 1;
  e.provision_delay = 0.1;
  return e;
}

TEST(JobManagerElastic, StaticRunBillsFullCluster) {
  svc::JobManager mgr(service_base(1.0, 3.0));
  const svc::SvcResult r = mgr.run();
  EXPECT_EQ(mgr.powered_count(), 4);
  EXPECT_EQ(r.peak_nodes, 4);
  EXPECT_DOUBLE_EQ(r.cost_node_seconds, 4.0 * r.elapsed);
  EXPECT_EQ(r.scale_out_events, 0u);
  EXPECT_EQ(r.scale_in_events, 0u);
}

TEST(JobManagerElastic, PoolBillsFewerNodeSecondsUnderLightLoad) {
  core::RuntimeConfig cfg = service_base(1.0, 4.0);

  svc::JobManager static_mgr(cfg);
  const svc::SvcResult rs = static_mgr.run();

  cfg.elastic = pool_config();
  svc::JobManager elastic_mgr(cfg);
  const svc::SvcResult re = elastic_mgr.run();

  // Same demand decided either way; the elastic pool powers a subset.
  EXPECT_EQ(re.arrived, rs.arrived);
  EXPECT_EQ(re.completed + re.shed, re.arrived);
  EXPECT_LT(re.cost_node_seconds, rs.cost_node_seconds);
  EXPECT_GE(re.peak_nodes, 2);
  EXPECT_LE(re.peak_nodes, 4);
  const int powered = elastic_mgr.powered_count();
  EXPECT_GE(powered, 2);
  EXPECT_LE(powered, 4);
  // The registry mirrors the scaling counters.
  EXPECT_EQ(elastic_mgr.metrics().find_counter("svc.scale_out")->value(),
            re.scale_out_events);
  EXPECT_EQ(elastic_mgr.metrics().find_counter("svc.scale_in")->value(),
            re.scale_in_events);
}

TEST(JobManagerElastic, PinnedBoundsMatchStaticScheduleBitwise) {
  core::RuntimeConfig cfg = service_base(2.0, 3.0);
  svc::JobManager static_mgr(cfg);
  const svc::SvcResult rs = static_mgr.run();

  // min = max = cluster size: the controller can never act, every slot is
  // powered from t=0, so job-visible behavior is the static run's —
  // bitwise, despite the extra elastic-tick events on the engine.
  cfg.elastic = pool_config();
  cfg.elastic.min_nodes = 4;
  cfg.elastic.max_nodes = 4;
  svc::JobManager pinned_mgr(cfg);
  const svc::SvcResult rp = pinned_mgr.run();

  ASSERT_EQ(static_mgr.jobs().size(), pinned_mgr.jobs().size());
  for (std::size_t i = 0; i < static_mgr.jobs().size(); ++i) {
    EXPECT_EQ(static_mgr.jobs()[i].arrival, pinned_mgr.jobs()[i].arrival);
    EXPECT_EQ(static_mgr.jobs()[i].started, pinned_mgr.jobs()[i].started);
    EXPECT_EQ(static_mgr.jobs()[i].finished, pinned_mgr.jobs()[i].finished);
    EXPECT_EQ(static_mgr.jobs()[i].outcome, pinned_mgr.jobs()[i].outcome);
  }
  EXPECT_EQ(rp.completed, rs.completed);
  // The pinned run bills the full cluster for its whole elapsed time
  // (elapsed itself stretches to the final elastic tick, so it is not
  // comparable to the static run's).
  EXPECT_DOUBLE_EQ(rp.cost_node_seconds, 4.0 * rp.elapsed);
  EXPECT_EQ(rp.scale_out_events, 0u);
  EXPECT_EQ(rp.scale_in_events, 0u);
}

TEST(JobManagerElastic, ElasticRunIsDeterministic) {
  core::RuntimeConfig cfg = service_base(2.0, 4.0);
  cfg.elastic = pool_config();
  svc::JobManager a(cfg);
  svc::JobManager b(cfg);
  const svc::SvcResult ra = a.run();
  const svc::SvcResult rb = b.run();
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.engine_events, rb.engine_events);
  EXPECT_EQ(ra.cost_node_seconds, rb.cost_node_seconds);  // bitwise
  EXPECT_EQ(ra.scale_out_events, rb.scale_out_events);
  EXPECT_EQ(ra.scale_in_events, rb.scale_in_events);
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].finished, b.jobs()[i].finished);
  }
}

TEST(JobManagerElastic, InvalidPoolBoundsThrow) {
  core::RuntimeConfig cfg = service_base(1.0, 2.0);
  cfg.elastic = pool_config();
  cfg.elastic.min_nodes = 5;  // > cluster size
  cfg.elastic.max_nodes = 8;
  EXPECT_THROW(svc::JobManager{cfg}, std::invalid_argument);

  cfg = service_base(1.0, 2.0);
  cfg.elastic = pool_config();
  cfg.elastic.max_nodes = 1;  // below the largest template (2 nodes)
  cfg.elastic.min_nodes = 1;
  EXPECT_THROW(svc::JobManager{cfg}, std::invalid_argument);
}

// --- JobManager control plane ------------------------------------------------

TEST(JobManagerControl, PolicyPushValidatesAgainstRegistry) {
  svc::JobManager mgr(service_base(1.0, 2.0));
  elastic::ControlPlane& cp = mgr.control();
  EXPECT_EQ(cp.push({"tlb.sched.policy", 1, "policy=congestion"}).status,
            elastic::PushStatus::Acked);
  const elastic::PushResult bad =
      cp.push({"tlb.sched.policy", 2, "policy=no-such-policy"});
  EXPECT_EQ(bad.status, elastic::PushStatus::Nacked);
  EXPECT_TRUE(bad.rolled_back);  // back to policy=congestion
  EXPECT_EQ(cp.last_acked("tlb.sched.policy")->payload, "policy=congestion");
}

TEST(JobManagerControl, AdmissionPushRejectsInvalidLimits) {
  core::RuntimeConfig cfg = service_base(1.0, 2.0);
  cfg.svc.admission.enabled = true;
  cfg.svc.admission.initial_limit = 3;
  cfg.svc.admission.min_limit = 1;
  cfg.svc.admission.max_limit = 4;
  svc::JobManager mgr(cfg);
  elastic::ControlPlane& cp = mgr.control();
  EXPECT_EQ(
      cp.push({"tlb.svc.admission", 1, "min_limit=2 max_limit=6"}).status,
      elastic::PushStatus::Acked);
  EXPECT_EQ(
      cp.push({"tlb.svc.admission", 2, "min_limit=0 max_limit=-3"}).status,
      elastic::PushStatus::Nacked);
  // The acked config survived the bad push.
  EXPECT_EQ(cp.last_acked("tlb.svc.admission")->version, 1u);
}

TEST(JobManagerControl, ElasticBoundsPushNeedsThePool) {
  svc::JobManager no_pool(service_base(1.0, 2.0));
  EXPECT_EQ(no_pool.control().push({"tlb.elastic.nodes", 1, "min=2"}).status,
            elastic::PushStatus::Nacked);

  core::RuntimeConfig cfg = service_base(1.0, 2.0);
  cfg.elastic = pool_config();
  svc::JobManager with_pool(cfg);
  EXPECT_EQ(
      with_pool.control().push({"tlb.elastic.nodes", 1, "min=3 max=4"}).status,
      elastic::PushStatus::Acked);
  EXPECT_EQ(
      with_pool.control().push({"tlb.elastic.nodes", 2, "min=9 max=4"}).status,
      elastic::PushStatus::Nacked);
}

// Regression for the scale-in teardown audit: an elastic run with
// power-downs interleaved between job completions must decide every
// record exactly once and destroy cleanly with deferred events (solver
// plans, elastic ticks) still queued on the shared engine at completion
// time. Failure modes this pins: a completion callback indexing an
// unregistered LaunchedJob, or a powered-off slot reclaiming a live
// partition.
TEST(JobManagerElastic, ScaleInTeardownDecidesEveryRecordOnce) {
  core::RuntimeConfig cfg = service_base(3.0, 4.0);
  cfg.elastic = pool_config();
  cfg.svc.admission.enabled = true;
  cfg.svc.admission.initial_limit = 2;
  cfg.svc.admission.min_limit = 1;
  cfg.svc.admission.max_limit = 4;
  svc::SvcResult r;
  {
    svc::JobManager mgr(cfg);
    r = mgr.run();
    for (const auto& rec : mgr.jobs()) {
      EXPECT_NE(rec.outcome, svc::JobOutcome::Pending);
    }
  }  // ~JobManager with queued deferred events: must not touch freed jobs
  EXPECT_EQ(r.completed + r.shed, r.arrived);
  EXPECT_GT(r.scale_in_events, 0u);
}

}  // namespace
