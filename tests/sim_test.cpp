// Unit tests for the discrete-event engine, RNG and cluster specs.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster_spec.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace tlb::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { ++fired; });
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIsHarmless) {
  EventQueue q;
  q.cancel(kInvalidEvent);
  q.cancel(99999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.at(2.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, AfterSchedulesRelative) {
  Engine e;
  std::vector<double> times;
  e.at(1.0, [&] {
    times.push_back(e.now());
    e.after(0.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Engine, StopHaltsLoop) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.at(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilRespectsHorizon) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(3.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsFiredCounter) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_fired(), 7u);
}

TEST(Engine, SelfReschedulingEvent) {
  Engine e;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) e.after(1.0, tick);
  };
  e.after(1.0, tick);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanIsCentred) {
  Rng r(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1b = Rng(99).fork(1);
  EXPECT_EQ(c1.next_u64(), c1b.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ExponentialMean) {
  Rng r(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(ClusterSpec, HomogeneousTotals) {
  const auto spec = ClusterSpec::homogeneous(4, 48);
  EXPECT_EQ(spec.node_count(), 4);
  EXPECT_EQ(spec.total_cores(), 192);
  EXPECT_DOUBLE_EQ(spec.total_capacity(), 192.0);
}

TEST(ClusterSpec, WithSpeedsAppliesEachOverride) {
  const auto spec =
      ClusterSpec::with_speeds(4, 16, {{1, 0.5}, {3, 2.0}});
  EXPECT_DOUBLE_EQ(spec.nodes[0].speed, 1.0);
  EXPECT_DOUBLE_EQ(spec.nodes[1].speed, 0.5);
  EXPECT_DOUBLE_EQ(spec.nodes[2].speed, 1.0);
  EXPECT_DOUBLE_EQ(spec.nodes[3].speed, 2.0);
  EXPECT_DOUBLE_EQ(spec.total_capacity(), 16.0 * (1.0 + 0.5 + 1.0 + 2.0));
}

TEST(ClusterSpec, SlowNodeCapacity) {
  const auto spec = ClusterSpec::with_slow_node(4, 16, 0, 0.6);
  EXPECT_DOUBLE_EQ(spec.nodes[0].speed, 0.6);
  EXPECT_DOUBLE_EQ(spec.nodes[1].speed, 1.0);
  EXPECT_DOUBLE_EQ(spec.total_capacity(), 16 * 0.6 + 3 * 16.0);
}

TEST(LinkSpec, TransferTimeModel) {
  LinkSpec link;
  link.latency = 1e-6;
  link.bandwidth = 1e9;
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 1e-6);
  EXPECT_DOUBLE_EQ(link.transfer_time(1000000), 1e-6 + 1e-3);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(seconds(2.0), 2.0);
  EXPECT_DOUBLE_EQ(milliseconds(50.0), 0.05);
  EXPECT_DOUBLE_EQ(microseconds(2.0), 2e-6);
}

}  // namespace
}  // namespace tlb::sim
