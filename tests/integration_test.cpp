// Integration tests asserting the paper's qualitative results end to end
// (with tolerances — these are the claims EXPERIMENTS.md tracks).
#include <gtest/gtest.h>

#include "apps/micropp/workload.hpp"
#include "apps/nbody/workload.hpp"
#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "metrics/imbalance.hpp"

namespace tlb {
namespace {

core::RuntimeConfig cluster_config(sim::ClusterSpec cluster, int per_node,
                                   int degree, bool dlb = true,
                                   core::PolicyKind policy =
                                       core::PolicyKind::Global) {
  core::RuntimeConfig cfg;
  cfg.cluster = std::move(cluster);
  cfg.appranks_per_node = per_node;
  cfg.degree = degree;
  cfg.lewi = dlb;
  cfg.drom = dlb;
  cfg.policy = dlb ? policy : core::PolicyKind::None;
  return cfg;
}

apps::micropp::MicroPPConfig micropp_cfg(int appranks) {
  apps::micropp::MicroPPConfig cfg;
  cfg.appranks = appranks;
  cfg.iterations = 12;
  cfg.elements_per_rank = 4096;
  cfg.elements_per_task = 16;
  cfg.heavy_rank_fraction = 0.25;
  cfg.nonlinear_fraction_heavy = 0.55;
  cfg.core_flops_rate = 5e7;
  return cfg;
}

// Paper §7.1 / abstract: offloading reduces MicroPP time-to-solution by
// roughly half versus single-node DLB (46-49% in the paper; we accept
// anything beyond 30%) and lands near the perfect-balance bound.
TEST(PaperClaims, MicroPPOffloadingBeatsDlbByALot) {
  apps::micropp::MicroPPWorkload wl_dlb(micropp_cfg(16));
  const auto dlb =
      core::ClusterRuntime(cluster_config(sim::ClusterSpec::homogeneous(8, 48),
                                          2, 1))
          .run(wl_dlb);
  apps::micropp::MicroPPWorkload wl_off(micropp_cfg(16));
  const auto off =
      core::ClusterRuntime(cluster_config(sim::ClusterSpec::homogeneous(8, 48),
                                          2, 4))
          .run(wl_off);
  const double reduction = 1.0 - off.makespan / dlb.makespan;
  EXPECT_GT(reduction, 0.30);
  EXPECT_LT(off.makespan, off.perfect_time * 1.25);
}

// Paper §7.2: the local policy balances too, but trails the global policy
// and offloads more work.
TEST(PaperClaims, LocalPolicyTrailsGlobalButBalances) {
  apps::micropp::MicroPPWorkload wl_g(micropp_cfg(8));
  const auto global =
      core::ClusterRuntime(cluster_config(sim::ClusterSpec::homogeneous(8, 48),
                                          1, 4))
          .run(wl_g);
  apps::micropp::MicroPPWorkload wl_l(micropp_cfg(8));
  const auto local =
      core::ClusterRuntime(cluster_config(sim::ClusterSpec::homogeneous(8, 48),
                                          1, 4, true,
                                          core::PolicyKind::Local))
          .run(wl_l);
  // Both converge near the perfect bound (on few nodes the local policy
  // can even edge ahead — it adjusts every 100 ms vs the global 2 s
  // period; the paper's local-policy deficit appears at 32+ nodes)...
  EXPECT_LT(global.makespan, global.perfect_time * 1.45);
  EXPECT_LT(local.makespan, local.perfect_time * 1.45);
  EXPECT_NEAR(local.makespan, global.makespan, 0.25 * global.makespan);
  // ...and the local policy's signature is more offloaded work (Fig 5).
  EXPECT_GT(local.work_offloaded, global.work_offloaded);
}

// Paper §7.3: synthetic imbalance sweep — degree 4 stays within ~20% of
// the perfect bound for imbalance up to 2 on 8 nodes, and execution time
// under DLB-only grows linearly with the imbalance.
TEST(PaperClaims, SyntheticDegree4NearPerfectUpToImbalance2) {
  for (double imb : {1.0, 1.5, 2.0}) {
    apps::SyntheticConfig scfg;
    scfg.appranks = 8;
    scfg.iterations = 6;
    scfg.tasks_per_rank = 320;
    scfg.imbalance = imb;
    apps::SyntheticWorkload wl(scfg);
    const auto r = core::ClusterRuntime(
                       cluster_config(sim::ClusterSpec::homogeneous(8, 16), 1,
                                      4))
                       .run(wl);
    EXPECT_LT(r.makespan, r.perfect_time * 1.20) << "imbalance " << imb;
  }
}

TEST(PaperClaims, DlbOnlyTimeGrowsLinearlyWithImbalance) {
  double prev = 0.0;
  for (double imb : {1.0, 2.0, 3.0}) {
    apps::SyntheticConfig scfg;
    scfg.appranks = 8;
    scfg.iterations = 2;
    scfg.tasks_per_rank = 160;
    scfg.imbalance = imb;
    apps::SyntheticWorkload wl(scfg);
    const auto r = core::ClusterRuntime(
                       cluster_config(sim::ClusterSpec::homogeneous(8, 16), 1,
                                      1))
                       .run(wl);
    if (prev > 0.0) {
      // Time ratio tracks the imbalance ratio (max rank dominates).
      EXPECT_GT(r.makespan, prev * 1.3);
    }
    prev = r.makespan;
  }
}

// Paper §7.4 (Fig 9): LeWI-only ~83% of baseline, DROM-only ~65%, both
// best. We assert the ordering and loose bands.
TEST(PaperClaims, LewiAndDromRolesMatchFig9) {
  auto run = [&](bool lewi, bool drom) {
    core::RuntimeConfig cfg =
        cluster_config(sim::ClusterSpec::homogeneous(4, 48), 1, 2);
    cfg.lewi = lewi;
    cfg.drom = drom;
    cfg.policy = drom ? core::PolicyKind::Global : core::PolicyKind::None;
    apps::micropp::MicroPPWorkload wl(micropp_cfg(4));
    return core::ClusterRuntime(cfg).run(wl).makespan;
  };
  const double baseline = run(false, false);
  const double lewi = run(true, false);
  const double drom = run(false, true);
  const double both = run(true, true);

  EXPECT_LT(lewi, baseline * 0.95);   // LeWI helps...
  EXPECT_GT(lewi, baseline * 0.65);   // ...but borrowed cores are limited
  EXPECT_LT(drom, lewi);              // DROM beats LeWI alone
  EXPECT_LE(both, drom * 1.02);       // combination is best (or ties)
}

// Paper §7.5 (Fig 10): with an emulated 3x slow rank, offloading keeps the
// time near optimal in both imbalance directions.
TEST(PaperClaims, EmulatedSlowRankHandledBothDirections) {
  for (const bool slow_has_most : {false, true}) {
    apps::SyntheticConfig scfg;
    scfg.appranks = 8;
    scfg.iterations = 4;
    scfg.tasks_per_rank = 160;
    scfg.imbalance = 2.0;
    scfg.slow_rank = 0;
    scfg.slow_factor = 3.0;
    if (slow_has_most) {
      scfg.worst_rank = 0;
    } else {
      scfg.worst_rank = 7;
      scfg.least_rank = 0;
    }
    apps::SyntheticWorkload wl_off(scfg);
    const auto off = core::ClusterRuntime(
                         cluster_config(sim::ClusterSpec::homogeneous(8, 16),
                                        1, 4))
                         .run(wl_off);
    apps::SyntheticWorkload wl_dlb(scfg);
    const auto dlb = core::ClusterRuntime(
                         cluster_config(sim::ClusterSpec::homogeneous(8, 16),
                                        1, 1))
                         .run(wl_dlb);
    EXPECT_LT(off.makespan, dlb.makespan * 0.75)
        << "slow_has_most=" << slow_has_most;
    EXPECT_LT(off.makespan, off.perfect_time * 1.6);
  }
}

// Paper §7.6 (Fig 11): with DROM the node imbalance converges close to
// 1.0; LeWI-only stays noticeably above it.
TEST(PaperClaims, DromConvergesNodeImbalanceLewiOnlyDoesNot) {
  auto tail_imbalance = [&](bool drom) {
    core::RuntimeConfig cfg =
        cluster_config(sim::ClusterSpec::homogeneous(4, 16), 1, 4);
    cfg.drom = drom;
    cfg.policy = drom ? core::PolicyKind::Global : core::PolicyKind::None;
    apps::SyntheticConfig scfg;
    scfg.appranks = 4;
    scfg.iterations = 8;
    scfg.tasks_per_rank = 480;
    scfg.imbalance = 4.0;
    apps::SyntheticWorkload wl(scfg);
    core::ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    std::vector<const trace::StepSeries*> node_busy;
    for (int n = 0; n < 4; ++n) node_busy.push_back(&rt.recorder().node_busy(n));
    const auto series =
        metrics::node_imbalance_series(node_busy, 0.0, r.makespan, 24);
    double tail = 0.0;
    for (int b = 16; b < 24; ++b) tail += series[static_cast<std::size_t>(b)];
    return tail / 8.0;
  };
  const double with_drom = tail_imbalance(true);
  const double lewi_only = tail_imbalance(false);
  EXPECT_LT(with_drom, 1.10);
  EXPECT_GT(lewi_only, with_drom);
}

// Paper §7.1 (Fig 6c): n-body with one slow node — DLB helps a little,
// offloading recovers far more.
TEST(PaperClaims, NBodySlowNodeRescuedByOffloading) {
  apps::nbody::NBodyConfig ncfg;
  ncfg.appranks = 16;
  ncfg.iterations = 8;
  ncfg.bodies = 4096;
  ncfg.blocks_per_rank = 32;
  ncfg.orb_chunk = 64;
  ncfg.dt = 5e-3;
  ncfg.cluster_fraction = 0.4;
  ncfg.seconds_per_interaction = 1.0e-4;

  auto run = [&](int degree, bool dlb) {
    apps::nbody::NBodyWorkload wl(ncfg);
    return core::ClusterRuntime(
               cluster_config(sim::ClusterSpec::with_slow_node(8, 16, 0, 0.6),
                              2, degree, dlb))
        .run(wl);
  };
  const auto baseline = run(1, false);
  const auto dlb = run(1, true);
  const auto offload = run(3, true);
  EXPECT_LE(dlb.makespan, baseline.makespan * 1.01);
  EXPECT_LT(offload.makespan, dlb.makespan * 0.85);
  EXPECT_GT(offload.offload_fraction(), 0.1);
}

// The expander-graph claim (§5.2/§7.3): degree 4 suffices up to 64 nodes —
// increasing beyond it buys little.
TEST(PaperClaims, Degree4SufficesAtScale) {
  auto run_degree = [&](int degree) {
    apps::SyntheticConfig scfg;
    scfg.appranks = 32;
    scfg.iterations = 4;
    scfg.tasks_per_rank = 160;
    scfg.imbalance = 2.0;
    apps::SyntheticWorkload wl(scfg);
    return core::ClusterRuntime(
               cluster_config(sim::ClusterSpec::homogeneous(32, 16), 1,
                              degree))
        .run(wl)
        .makespan;
  };
  const double deg2 = run_degree(2);
  const double deg4 = run_degree(4);
  const double deg8 = run_degree(8);
  EXPECT_LT(deg4, deg2);                // connectivity still pays at 4
  EXPECT_GT(deg8, deg4 * 0.85);         // ...but 8 buys little beyond 4
}

}  // namespace
}  // namespace tlb
