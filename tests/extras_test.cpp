// Tests for the auxiliary components: partitioned allocation, Paraver
// export, TALP report, and the extra vmpi collectives.
#include <gtest/gtest.h>

#include <sstream>

#include "dlb/report.hpp"
#include "graph/expander.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "solver/partitioned.hpp"
#include "trace/paraver.hpp"
#include "vmpi/comm.hpp"

namespace tlb {
namespace {

// ---- partitioned allocation ---------------------------------------------------

solver::AllocationProblem make_problem(const graph::BipartiteGraph& g,
                                       std::vector<double> work, int cores) {
  solver::AllocationProblem p;
  p.graph = &g;
  p.work = std::move(work);
  p.node_cores.assign(static_cast<std::size_t>(g.right_count()), cores);
  return p;
}

TEST(PartitionedAllocation, SingleGroupMatchesDirectSolve) {
  const auto ex = graph::build_expander(
      {.nodes = 8, .appranks_per_node = 1, .degree = 3, .seed = 2});
  sim::Rng rng(5);
  std::vector<double> work;
  for (int a = 0; a < 8; ++a) work.push_back(rng.uniform(0.0, 20.0));
  const auto p = make_problem(ex.graph, work, 16);
  const auto direct = solver::solve_allocation(p);
  const auto part = solver::solve_allocation_partitioned(p, 1, 32);
  EXPECT_EQ(part.groups, 1);
  EXPECT_NEAR(part.objective, direct.objective, 1e-9);
  EXPECT_EQ(part.cores, direct.cores);
}

TEST(PartitionedAllocation, RespectsNodeCapacities) {
  const auto ex = graph::build_expander(
      {.nodes = 16, .appranks_per_node = 2, .degree = 4, .seed = 3});
  sim::Rng rng(7);
  std::vector<double> work;
  for (int a = 0; a < ex.graph.left_count(); ++a) {
    work.push_back(rng.uniform(0.0, 30.0));
  }
  const auto p = make_problem(ex.graph, work, 48);
  const auto part = solver::solve_allocation_partitioned(p, 2, 4);
  EXPECT_EQ(part.groups, 4);
  std::vector<int> node_sum(16, 0);
  for (int a = 0; a < ex.graph.left_count(); ++a) {
    const auto& nb = ex.graph.neighbors_of_left(a);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      EXPECT_GE(part.cores[static_cast<std::size_t>(a)][j], 1);
      node_sum[static_cast<std::size_t>(nb[j])] +=
          part.cores[static_cast<std::size_t>(a)][j];
    }
  }
  // Every node's ownership never exceeds capacity; the floor cores of
  // cross-group workers fill the remainder exactly.
  for (int n = 0; n < 16; ++n) {
    EXPECT_EQ(node_sum[static_cast<std::size_t>(n)], 48) << "node " << n;
  }
}

TEST(PartitionedAllocation, CrossGroupEdgesKeepFloor) {
  const auto ex = graph::build_expander(
      {.nodes = 16, .appranks_per_node = 1, .degree = 4, .seed = 9});
  std::vector<double> work(16, 10.0);
  work[0] = 100.0;
  const auto p = make_problem(ex.graph, work, 16);
  const auto part = solver::solve_allocation_partitioned(p, 1, 8);
  for (int a = 0; a < 16; ++a) {
    const int home = ex.graph.neighbors_of_left(a).front();
    const int group = home / 8;
    const auto& nb = ex.graph.neighbors_of_left(a);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      if (nb[j] / 8 != group) {
        EXPECT_EQ(part.cores[static_cast<std::size_t>(a)][j], 1);
      }
    }
  }
}

TEST(PartitionedAllocation, ObjectiveNoBetterThanGlobal) {
  const auto ex = graph::build_expander(
      {.nodes = 16, .appranks_per_node = 1, .degree = 4, .seed = 11});
  std::vector<double> work(16, 5.0);
  work[3] = 60.0;
  const auto p = make_problem(ex.graph, work, 16);
  const auto direct = solver::solve_allocation(p);
  const auto part = solver::solve_allocation_partitioned(p, 1, 8);
  EXPECT_GE(part.objective, direct.objective - 1e-9);
}

// ---- Paraver export --------------------------------------------------------------

TEST(Paraver, HeaderAndRecordFormat) {
  trace::Recorder rec(2, 1);
  rec.busy_delta(0.0, 0, 0, +1);
  rec.busy_delta(1.0, 0, 0, -1);
  rec.set_owned(0.0, 1, 0, 4);
  const std::string prv = trace::to_paraver(rec, 2.0);
  EXPECT_EQ(prv.rfind("#Paraver", 0), 0u);
  EXPECT_NE(prv.find(":2000000000_ns:"), std::string::npos);
  // busy event on thread 1 at t=0 with value 1
  EXPECT_NE(prv.find("2:1:1:1:1:0:90000001:1"), std::string::npos);
  // owned event on thread 2 (node1, apprank0)
  EXPECT_NE(prv.find(":90000002:4"), std::string::npos);
}

TEST(Paraver, RecordsAreTimeSorted) {
  trace::Recorder rec(1, 2);
  // apprank 1 changes first; the exporter walks apprank 0's series first,
  // so the output needs an explicit time sort.
  rec.busy_delta(0.0, 0, 1, +1);
  rec.busy_delta(0.5, 0, 0, +1);
  const std::string prv = trace::to_paraver(rec, 1.0);
  std::istringstream in(prv);
  std::string line;
  std::getline(in, line);  // header
  long long prev = -1;
  int records = 0;
  while (std::getline(in, line)) {
    // field 6 is the timestamp
    long long t = 0;
    int thread = 0;
    int type = 0;
    long long value = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "2:%d:1:1:%*d:%lld:%d:%lld", &thread,
                          &t, &type, &value),
              4)
        << line;
    EXPECT_GE(t, prev);
    prev = t;
    ++records;
  }
  EXPECT_EQ(records, 2);
}

TEST(Paraver, RowLabelsMatchThreads) {
  trace::Recorder rec(2, 2);
  const std::string row = trace::paraver_row_labels(rec);
  EXPECT_NE(row.find("LEVEL THREAD SIZE 4"), std::string::npos);
  EXPECT_NE(row.find("node 1 apprank 0"), std::string::npos);
}

// ---- TALP report -------------------------------------------------------------------

TEST(TalpReport, ComputesEfficiencies) {
  double now = 0.0;
  dlb::TalpModule talp([&] { return now; }, 2);
  talp.on_busy_delta(0, +2);
  now = 10.0;
  talp.on_busy_delta(0, -2);

  const std::string report = dlb::talp_report(
      talp, {{"apprank 0", 0, 4.0}, {"helper 0@1", 1, 1.0}}, 10.0);
  EXPECT_NE(report.find("apprank 0"), std::string::npos);
  EXPECT_NE(report.find("50.0%"), std::string::npos);   // 20 / (4 * 10)
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
  EXPECT_NE(report.find("40.0%"), std::string::npos);   // 20 / (5 * 10)
}

// ---- vmpi collectives ------------------------------------------------------------

TEST(VmpiCollectives, BcastReachesEveryRank) {
  sim::Engine engine;
  vmpi::Communicator comm(engine, sim::LinkSpec{1e-6, 1e9}, {0, 1, 2, 3});
  int done = 0;
  sim::SimTime when = -1.0;
  for (int r = 0; r < 4; ++r) {
    comm.bcast(r, /*root=*/0, /*bytes=*/1000, [&] {
      ++done;
      when = engine.now();
    });
  }
  engine.run();
  EXPECT_EQ(done, 4);
  // 2 latency rounds (log2 4) + 1000 B / 1e9 B/s.
  EXPECT_NEAR(when, 2e-6 + 1e-6, 1e-12);
}

TEST(VmpiCollectives, GatherDeliversValuesToRootOnly) {
  sim::Engine engine;
  vmpi::Communicator comm(engine, sim::LinkSpec{1e-6, 1e9}, {0, 0, 1});
  std::vector<double> at_root;
  int empty_count = 0;
  for (int r = 0; r < 3; ++r) {
    comm.gather(r, /*root=*/1, 10.0 * r, [&](const std::vector<double>& v) {
      if (v.empty()) {
        ++empty_count;
      } else {
        at_root = v;
      }
    });
  }
  engine.run();
  EXPECT_EQ(empty_count, 2);
  ASSERT_EQ(at_root.size(), 3u);
  EXPECT_DOUBLE_EQ(at_root[2], 20.0);
}

TEST(VmpiCollectives, GatherReusable) {
  sim::Engine engine;
  vmpi::Communicator comm(engine, sim::LinkSpec{1e-6, 1e9}, {0, 1});
  int rounds = 0;
  for (int round = 0; round < 2; ++round) {
    for (int r = 0; r < 2; ++r) {
      comm.gather(r, 0, 1.0, [&](const std::vector<double>& v) {
        if (!v.empty()) ++rounds;
      });
    }
    engine.run();
  }
  EXPECT_EQ(rounds, 2);
}

}  // namespace
}  // namespace tlb
