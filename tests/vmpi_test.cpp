// Unit tests for the virtual MPI layer.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "vmpi/comm.hpp"

namespace tlb::vmpi {
namespace {

struct Fixture {
  sim::Engine engine;
  sim::LinkSpec link{2e-6, 12.5e9};

  Communicator make(std::vector<int> placement) {
    return Communicator(engine, link, std::move(placement));
  }
};

TEST(Vmpi, SendThenRecvDelivers) {
  Fixture f;
  auto comm = f.make({0, 1});
  bool got = false;
  comm.recv(1, 0, 7, [&](const Message& m) {
    got = true;
    EXPECT_EQ(m.source, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(m.bytes, 100u);
  });
  comm.send(0, 1, 7, 100);
  f.engine.run();
  EXPECT_TRUE(got);
}

TEST(Vmpi, RecvBeforeSendMatches) {
  Fixture f;
  auto comm = f.make({0, 1});
  int got = 0;
  comm.send(0, 1, 7, 10);
  f.engine.run();  // message sits in the unexpected queue
  comm.recv(1, 0, 7, [&](const Message&) { ++got; });
  EXPECT_EQ(got, 1);
}

TEST(Vmpi, WildcardSourceAndTag) {
  Fixture f;
  auto comm = f.make({0, 0, 0});
  int got = 0;
  comm.recv(2, kAnySource, kAnyTag, [&](const Message& m) {
    ++got;
    EXPECT_EQ(m.source, 1);
  });
  comm.send(1, 2, 42, 8);
  f.engine.run();
  EXPECT_EQ(got, 1);
}

TEST(Vmpi, TagFiltersMessages) {
  Fixture f;
  auto comm = f.make({0, 1});
  std::vector<int> tags;
  comm.recv(1, 0, 2, [&](const Message& m) { tags.push_back(m.tag); });
  comm.send(0, 1, 1, 8);
  comm.send(0, 1, 2, 8);
  f.engine.run();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 2);
  // The tag-1 message is still retrievable.
  int got = 0;
  comm.recv(1, 0, 1, [&](const Message&) { ++got; });
  EXPECT_EQ(got, 1);
}

TEST(Vmpi, InterNodeTransferCost) {
  Fixture f;
  auto comm = f.make({0, 1});
  const std::uint64_t bytes = 125000;  // 10 us at 12.5 GB/s
  sim::SimTime delivered = -1.0;
  comm.recv(1, 0, 0, [&](const Message& m) { delivered = m.delivered_at; });
  comm.send(0, 1, 0, bytes);
  f.engine.run();
  EXPECT_NEAR(delivered, 2e-6 + 1e-5, 1e-12);
}

TEST(Vmpi, IntraNodeIsCheaperThanNetwork) {
  Fixture f;
  auto comm = f.make({0, 0, 1});
  EXPECT_LT(comm.transfer_cost(0, 1, 1 << 20),
            comm.transfer_cost(0, 2, 1 << 20));
}

TEST(Vmpi, ChannelFifoNoOvertaking) {
  Fixture f;
  auto comm = f.make({0, 1});
  std::vector<int> order;
  comm.recv(1, 0, kAnyTag, [&](const Message& m) { order.push_back(m.tag); });
  comm.recv(1, 0, kAnyTag, [&](const Message& m) { order.push_back(m.tag); });
  comm.send(0, 1, 1, 10'000'000);  // big: slow
  comm.send(0, 1, 2, 8);           // small: would overtake without FIFO
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Vmpi, SenderCompletionCallback) {
  Fixture f;
  auto comm = f.make({0, 1});
  bool sent = false;
  comm.send(0, 1, 0, 8, [&](const Message&) { sent = true; });
  f.engine.run();
  EXPECT_TRUE(sent);
}

TEST(Vmpi, BarrierReleasesAllTogether) {
  Fixture f;
  auto comm = f.make({0, 1, 2, 3});
  std::vector<sim::SimTime> times(4, -1.0);
  for (int r = 0; r < 4; ++r) {
    f.engine.at(0.1 * r, [&, r] {
      comm.barrier(r, [&, r] { times[static_cast<std::size_t>(r)] = f.engine.now(); });
    });
  }
  f.engine.run();
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(times[0], times[static_cast<std::size_t>(r)]);
  // Last arrival at 0.3 plus log2(4)=2 latencies.
  EXPECT_NEAR(times[0], 0.3 + 2 * f.link.latency, 1e-12);
}

TEST(Vmpi, BarrierReusableAcrossGenerations) {
  Fixture f;
  auto comm = f.make({0, 1});
  int done = 0;
  comm.barrier(0, [&] { ++done; });
  comm.barrier(1, [&] { ++done; });
  f.engine.run();
  EXPECT_EQ(done, 2);
  comm.barrier(0, [&] { ++done; });
  comm.barrier(1, [&] { ++done; });
  f.engine.run();
  EXPECT_EQ(done, 4);
}

TEST(Vmpi, AllreduceSumsContributions) {
  Fixture f;
  auto comm = f.make({0, 1, 2});
  std::vector<double> sums;
  for (int r = 0; r < 3; ++r) {
    comm.allreduce_sum(r, r + 1.0, [&](double s) { sums.push_back(s); });
  }
  f.engine.run();
  ASSERT_EQ(sums.size(), 3u);
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 6.0);
}

TEST(Vmpi, MessageCountersAccumulate) {
  Fixture f;
  auto comm = f.make({0, 1});
  comm.send(0, 1, 0, 100);
  comm.send(1, 0, 0, 200);
  f.engine.run();
  EXPECT_EQ(comm.messages_sent(), 2u);
  EXPECT_EQ(comm.bytes_sent(), 300u);
}

TEST(Vmpi, SingleRankBarrierIsImmediatelyReleased) {
  Fixture f;
  auto comm = f.make({0});
  bool done = false;
  comm.barrier(0, [&] { done = true; });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.engine.now(), 0.0);  // log2(1) = 0 rounds
}

}  // namespace
}  // namespace tlb::vmpi
