// Unit tests for the virtual MPI layer.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "vmpi/comm.hpp"

namespace tlb::vmpi {
namespace {

struct Fixture {
  sim::Engine engine;
  sim::LinkSpec link{2e-6, 12.5e9};

  Communicator make(std::vector<int> placement) {
    return Communicator(engine, link, std::move(placement));
  }
};

TEST(Vmpi, SendThenRecvDelivers) {
  Fixture f;
  auto comm = f.make({0, 1});
  bool got = false;
  comm.recv(1, 0, 7, [&](const Message& m) {
    got = true;
    EXPECT_EQ(m.source, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(m.bytes, 100u);
  });
  comm.send(0, 1, 7, 100);
  f.engine.run();
  EXPECT_TRUE(got);
}

TEST(Vmpi, RecvBeforeSendMatches) {
  Fixture f;
  auto comm = f.make({0, 1});
  int got = 0;
  comm.send(0, 1, 7, 10);
  f.engine.run();  // message sits in the unexpected queue
  comm.recv(1, 0, 7, [&](const Message&) { ++got; });
  EXPECT_EQ(got, 1);
}

TEST(Vmpi, WildcardSourceAndTag) {
  Fixture f;
  auto comm = f.make({0, 0, 0});
  int got = 0;
  comm.recv(2, kAnySource, kAnyTag, [&](const Message& m) {
    ++got;
    EXPECT_EQ(m.source, 1);
  });
  comm.send(1, 2, 42, 8);
  f.engine.run();
  EXPECT_EQ(got, 1);
}

TEST(Vmpi, TagFiltersMessages) {
  Fixture f;
  auto comm = f.make({0, 1});
  std::vector<int> tags;
  comm.recv(1, 0, 2, [&](const Message& m) { tags.push_back(m.tag); });
  comm.send(0, 1, 1, 8);
  comm.send(0, 1, 2, 8);
  f.engine.run();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 2);
  // The tag-1 message is still retrievable.
  int got = 0;
  comm.recv(1, 0, 1, [&](const Message&) { ++got; });
  EXPECT_EQ(got, 1);
}

TEST(Vmpi, InterNodeTransferCost) {
  Fixture f;
  auto comm = f.make({0, 1});
  const std::uint64_t bytes = 125000;  // 10 us at 12.5 GB/s
  sim::SimTime delivered = -1.0;
  comm.recv(1, 0, 0, [&](const Message& m) { delivered = m.delivered_at; });
  comm.send(0, 1, 0, bytes);
  f.engine.run();
  EXPECT_NEAR(delivered, 2e-6 + 1e-5, 1e-12);
}

TEST(Vmpi, IntraNodeIsCheaperThanNetwork) {
  Fixture f;
  auto comm = f.make({0, 0, 1});
  EXPECT_LT(comm.transfer_cost(0, 1, 1 << 20),
            comm.transfer_cost(0, 2, 1 << 20));
}

TEST(Vmpi, ChannelFifoNoOvertaking) {
  Fixture f;
  auto comm = f.make({0, 1});
  std::vector<int> order;
  comm.recv(1, 0, kAnyTag, [&](const Message& m) { order.push_back(m.tag); });
  comm.recv(1, 0, kAnyTag, [&](const Message& m) { order.push_back(m.tag); });
  comm.send(0, 1, 1, 10'000'000);  // big: slow
  comm.send(0, 1, 2, 8);           // small: would overtake without FIFO
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Vmpi, SenderCompletionCallback) {
  Fixture f;
  auto comm = f.make({0, 1});
  bool sent = false;
  comm.send(0, 1, 0, 8, [&](const Message&) { sent = true; });
  f.engine.run();
  EXPECT_TRUE(sent);
}

TEST(Vmpi, BarrierReleasesAllTogether) {
  Fixture f;
  auto comm = f.make({0, 1, 2, 3});
  std::vector<sim::SimTime> times(4, -1.0);
  for (int r = 0; r < 4; ++r) {
    f.engine.at(0.1 * r, [&, r] {
      comm.barrier(r, [&, r] { times[static_cast<std::size_t>(r)] = f.engine.now(); });
    });
  }
  f.engine.run();
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(times[0], times[static_cast<std::size_t>(r)]);
  // Last arrival at 0.3 plus log2(4)=2 latencies.
  EXPECT_NEAR(times[0], 0.3 + 2 * f.link.latency, 1e-12);
}

TEST(Vmpi, BarrierReusableAcrossGenerations) {
  Fixture f;
  auto comm = f.make({0, 1});
  int done = 0;
  comm.barrier(0, [&] { ++done; });
  comm.barrier(1, [&] { ++done; });
  f.engine.run();
  EXPECT_EQ(done, 2);
  comm.barrier(0, [&] { ++done; });
  comm.barrier(1, [&] { ++done; });
  f.engine.run();
  EXPECT_EQ(done, 4);
}

TEST(Vmpi, AllreduceSumsContributions) {
  Fixture f;
  auto comm = f.make({0, 1, 2});
  std::vector<double> sums;
  for (int r = 0; r < 3; ++r) {
    comm.allreduce_sum(r, r + 1.0, [&](double s) { sums.push_back(s); });
  }
  f.engine.run();
  ASSERT_EQ(sums.size(), 3u);
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 6.0);
}

TEST(Vmpi, MessageCountersAccumulate) {
  Fixture f;
  auto comm = f.make({0, 1});
  comm.send(0, 1, 0, 100);
  comm.send(1, 0, 0, 200);
  f.engine.run();
  EXPECT_EQ(comm.messages_sent(), 2u);
  EXPECT_EQ(comm.bytes_sent(), 300u);
}

TEST(Vmpi, SingleRankBarrierIsImmediatelyReleased) {
  Fixture f;
  auto comm = f.make({0});
  bool done = false;
  comm.barrier(0, [&] { done = true; });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.engine.now(), 0.0);  // log2(1) = 0 rounds
}

TEST(Vmpi, WildcardRecvsDrainSameTimestampDeliveries) {
  // Two messages from different sources on the same node arrive at the
  // same simulated instant; wildcard receives must match both, in the
  // engine's FIFO tie order (send order).
  Fixture f;
  auto comm = f.make({0, 0, 0});  // all intra-node: identical cost
  std::vector<int> sources;
  comm.recv(2, kAnySource, kAnyTag,
            [&](const Message& m) { sources.push_back(m.source); });
  comm.recv(2, kAnySource, kAnyTag,
            [&](const Message& m) { sources.push_back(m.source); });
  comm.send(0, 2, 5, 64);
  comm.send(1, 2, 5, 64);
  f.engine.run();
  EXPECT_EQ(sources, (std::vector<int>{0, 1}));
}

TEST(Vmpi, ChannelFifoSurvivesRetransmits) {
  // With heavy message loss, retransmitted messages must not overtake
  // later ones of the same channel: delivery stays in send order.
  Fixture f;
  auto comm = f.make({0, 1});
  LinkFault fault;
  fault.loss_rate = 0.4;
  comm.set_fault_seed(123);
  comm.set_link_fault(fault);
  constexpr int kMessages = 30;
  std::vector<int> order;
  for (int i = 0; i < kMessages; ++i) {
    comm.recv(1, 0, kAnyTag, [&](const Message& m) { order.push_back(m.tag); });
    comm.send(0, 1, i, 256);
  }
  f.engine.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_GT(comm.retransmissions(), 0u);  // the loss rate did bite
  EXPECT_EQ(comm.messages_lost(), comm.retransmissions());
}

TEST(Vmpi, NearCertainLossDeliversWithinMaxAttempts) {
  // The link is fail-slow: the final attempt always succeeds, so even a
  // near-certain loss rate delivers within RetryPolicy::max_attempts.
  Fixture f;
  auto comm = f.make({0, 1});
  LinkFault fault;
  fault.loss_rate = 0.99;
  comm.set_fault_seed(7);
  comm.set_link_fault(fault);
  int attempts = 0;
  comm.recv(1, 0, 0, [&](const Message& m) { attempts = m.attempts; });
  comm.send(0, 1, 0, 64);
  f.engine.run();
  EXPECT_GT(attempts, 1);
  EXPECT_LE(attempts, comm.retry_policy().max_attempts);
}

TEST(Vmpi, BarrierWaitsForDelayedStraggler) {
  Fixture f;
  auto comm = f.make({0, 1, 2});
  std::vector<sim::SimTime> times(3, -1.0);
  comm.barrier(0, [&] { times[0] = f.engine.now(); });
  comm.barrier(1, [&] { times[1] = f.engine.now(); });
  f.engine.at(5.0, [&] {
    comm.barrier(2, [&] { times[2] = f.engine.now(); });
  });
  f.engine.run();
  // Released together, no earlier than the straggler's arrival.
  EXPECT_DOUBLE_EQ(times[0], times[1]);
  EXPECT_DOUBLE_EQ(times[0], times[2]);
  EXPECT_NEAR(times[0], 5.0 + 2 * f.link.latency, 1e-12);
}

TEST(Vmpi, DegradedLinkScalesTransferCost) {
  Fixture f;
  auto comm = f.make({0, 1});
  constexpr std::uint64_t kBytes = 1'000'000;
  sim::SimTime clean = -1.0;
  comm.recv(1, 0, 0, [&](const Message& m) { clean = m.delivered_at; });
  comm.send(0, 1, 0, kBytes);
  f.engine.run();

  LinkFault fault;
  fault.latency_mult = 2.0;
  fault.bandwidth_mult = 0.5;
  comm.set_link_fault(fault);
  const sim::SimTime degraded_start = f.engine.now();
  sim::SimTime degraded = -1.0;
  comm.recv(1, 0, 0, [&](const Message& m) { degraded = m.delivered_at; });
  comm.send(0, 1, 0, kBytes);
  f.engine.run();

  const sim::SimTime clean_cost = clean;  // sent at t = 0
  const sim::SimTime degraded_cost = degraded - degraded_start;
  EXPECT_NEAR(degraded_cost,
              2.0 * f.link.latency + kBytes / (0.5 * f.link.bandwidth), 1e-12);
  EXPECT_GT(degraded_cost, clean_cost * 1.9);
}

TEST(Vmpi, BackoffCapBoundsRetransmitDelay) {
  // Capped exponential backoff (tlb::resil): with loss_rate = 1.0 every
  // non-final attempt is lost, so the delivery time is exactly the sum of
  // the backoff waits plus one transfer cost — and each wait is bounded by
  // RetryPolicy::timeout_cap.
  Fixture f;
  auto comm = f.make({0, 1});
  LinkFault total_loss;
  total_loss.loss_rate = 1.0;
  comm.set_fault_seed(99);
  comm.set_link_fault(total_loss);
  RetryPolicy capped;
  capped.timeout = 1e-3;
  capped.backoff = 2.0;
  capped.max_attempts = 6;
  capped.timeout_cap = 2e-3;
  comm.set_retry_policy(capped);

  sim::SimTime delivered = -1.0;
  comm.recv(1, 0, 0, [&](const Message& m) { delivered = m.delivered_at; });
  comm.send(0, 1, 0, 64);
  f.engine.run();

  // Waits: 1ms, then 2ms capped four times (uncapped would be 1+2+4+8+16).
  const sim::SimTime waits = 1e-3 + 4 * 2e-3;
  const sim::SimTime cost = f.link.latency + 64.0 / f.link.bandwidth;
  EXPECT_NEAR(delivered, waits + cost, 1e-12);
  EXPECT_LT(delivered, 31e-3);  // strictly better than uncapped growth
}

TEST(Vmpi, TotalLossRetransmitCountIsBounded) {
  // Under 100% loss the retransmit count per message is exactly
  // max_attempts - 1 (the final attempt always succeeds: fail-slow), and
  // every message still drains — nothing stays in flight forever.
  Fixture f;
  auto comm = f.make({0, 1});
  LinkFault total_loss;
  total_loss.loss_rate = 1.0;
  comm.set_fault_seed(5);
  comm.set_link_fault(total_loss);
  RetryPolicy policy;
  policy.timeout = 1e-4;
  policy.backoff = 2.0;
  policy.max_attempts = 4;
  policy.timeout_cap = 4e-4;
  comm.set_retry_policy(policy);

  constexpr int kMessages = 10;
  int delivered = 0;
  for (int i = 0; i < kMessages; ++i) {
    comm.recv(1, 0, kAnyTag, [&](const Message& m) {
      ++delivered;
      EXPECT_EQ(m.attempts, policy.max_attempts);
    });
    comm.send(0, 1, i, 32);
  }
  f.engine.run();
  EXPECT_EQ(delivered, kMessages);  // in-flight count returned to zero
  EXPECT_EQ(comm.retransmissions(),
            static_cast<std::uint64_t>(kMessages) *
                static_cast<std::uint64_t>(policy.max_attempts - 1));
}

TEST(Vmpi, AddRankPreservesChannelState) {
  // add_rank (expander rewire) grows the communicator mid-run without
  // disturbing in-flight FIFO state: messages sent before the growth still
  // deliver in order, and the new rank is immediately usable.
  Fixture f;
  auto comm = f.make({0, 1});
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    comm.recv(1, 0, kAnyTag, [&](const Message& m) { order.push_back(m.tag); });
    comm.send(0, 1, i, 128);
  }
  const RankId fresh = comm.add_rank(/*node=*/2);
  EXPECT_EQ(fresh, 2);
  EXPECT_EQ(comm.size(), 3);
  bool fresh_got = false;
  comm.recv(fresh, 0, 7, [&](const Message&) { fresh_got = true; });
  comm.send(0, fresh, 7, 64);
  f.engine.run();
  ASSERT_EQ(order.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(fresh_got);
}

TEST(Vmpi, BcastCountsPayloadOncePerLinkTraversal) {
  // A broadcast of B bytes over P ranks injects the payload onto (P - 1)
  // links in the binomial tree — bytes_sent() must count (P - 1) * B, not
  // B and not P * B (regression: it used to count B once total).
  Fixture f;
  auto comm = f.make({0, 1, 2, 3});
  int done = 0;
  for (int r = 0; r < 4; ++r) comm.bcast(r, /*root=*/0, 1000, [&] { ++done; });
  f.engine.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(comm.bytes_sent(), 3000u);
  EXPECT_EQ(comm.messages_sent(), 0u);  // collectives are not point-to-point
}

TEST(Vmpi, FabricRoutedSendsShareBandwidth) {
  // With a fabric attached, concurrent inter-node payloads share the NIC
  // max-min fairly instead of each paying the analytic cost: two 1000-byte
  // messages over a 100 B/s NIC both finish at t = 20, not t = 10.
  Fixture f;
  auto comm = f.make({0, 1});
  net::Fabric fabric(f.engine, net::NetTopology::crossbar(2, 100.0, 0.0));
  comm.attach_fabric(&fabric);
  std::vector<sim::SimTime> delivered;
  comm.recv(1, 0, kAnyTag, [&](const Message& m) { delivered.push_back(m.delivered_at); });
  comm.recv(1, 0, kAnyTag, [&](const Message& m) { delivered.push_back(m.delivered_at); });
  comm.send(0, 1, 1, 1000);
  comm.send(0, 1, 2, 1000);
  f.engine.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_NEAR(delivered[0], 20.0, 1e-9);
  EXPECT_NEAR(delivered[1], 20.0, 1e-9);
  EXPECT_EQ(fabric.flows_started(), 2u);
  EXPECT_EQ(fabric.active_flows(), 0);
  EXPECT_EQ(comm.bytes_sent(), 2000u);  // accounting is unchanged by routing
}

TEST(Vmpi, IntraNodeSendsBypassFabric) {
  // Shared-memory transfers never enter the fabric: same cost as without
  // one attached, and no flow is started.
  Fixture f;
  auto comm = f.make({0, 0});
  net::Fabric fabric(f.engine, net::NetTopology::crossbar(1, 100.0, 0.0));
  comm.attach_fabric(&fabric);
  const std::uint64_t bytes = 1 << 20;
  sim::SimTime delivered = -1.0;
  comm.recv(1, 0, 0, [&](const Message& m) { delivered = m.delivered_at; });
  comm.send(0, 1, 0, bytes);
  f.engine.run();
  EXPECT_NEAR(delivered, f.link.shm_transfer_time(bytes), 1e-12);
  EXPECT_EQ(fabric.flows_started(), 0u);
}

}  // namespace
}  // namespace tlb::vmpi
