// Unit and cross-check tests for max-flow, min-cost flow, simplex and the
// Equation-1 allocation solver.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/expander.hpp"
#include "sim/rng.hpp"
#include "solver/allocation.hpp"
#include "solver/maxflow.hpp"
#include "solver/mincost_flow.hpp"
#include "solver/simplex.hpp"

namespace tlb::solver {
namespace {

TEST(MaxFlow, SimplePath) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 5.0);
  mf.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 3.0);
}

TEST(MaxFlow, ParallelPaths) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 2.0);
  mf.add_edge(0, 2, 2.0);
  mf.add_edge(1, 3, 2.0);
  mf.add_edge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 4.0);
}

TEST(MaxFlow, ClassicTextbookGraph) {
  // CLRS-style example with known max flow 23.
  MaxFlow mf(6);
  mf.add_edge(0, 1, 16);
  mf.add_edge(0, 2, 13);
  mf.add_edge(1, 2, 10);
  mf.add_edge(2, 1, 4);
  mf.add_edge(1, 3, 12);
  mf.add_edge(3, 2, 9);
  mf.add_edge(2, 4, 14);
  mf.add_edge(4, 3, 7);
  mf.add_edge(3, 5, 20);
  mf.add_edge(4, 5, 4);
  EXPECT_NEAR(mf.solve(0, 5), 23.0, 1e-9);
}

TEST(MaxFlow, FlowOnEdgeConservation) {
  MaxFlow mf(4);
  const int e1 = mf.add_edge(0, 1, 3.0);
  const int e2 = mf.add_edge(0, 2, 3.0);
  const int e3 = mf.add_edge(1, 3, 2.0);
  const int e4 = mf.add_edge(2, 3, 4.0);
  const double total = mf.solve(0, 3);
  EXPECT_NEAR(mf.flow_on(e1) + mf.flow_on(e2), total, 1e-9);
  EXPECT_NEAR(mf.flow_on(e3) + mf.flow_on(e4), total, 1e-9);
  EXPECT_LE(mf.flow_on(e3), 2.0 + 1e-9);
}

TEST(MaxFlow, FractionalCapacities) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 0.75);
  mf.add_edge(1, 2, 0.5);
  EXPECT_NEAR(mf.solve(0, 2), 0.5, 1e-12);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5.0);
  mf.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 0.0);
}

TEST(MinCostFlow, PrefersCheapPath) {
  MinCostFlow mc(4);
  const int cheap = mc.add_edge(0, 1, 1.0, 0.0);
  mc.add_edge(1, 3, 1.0, 0.0);
  const int costly = mc.add_edge(0, 2, 1.0, 1.0);
  mc.add_edge(2, 3, 1.0, 0.0);
  const auto r = mc.solve(0, 3, 1.0);
  EXPECT_DOUBLE_EQ(r.flow, 1.0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_DOUBLE_EQ(mc.flow_on(cheap), 1.0);
  EXPECT_DOUBLE_EQ(mc.flow_on(costly), 0.0);
}

TEST(MinCostFlow, SpillsToCostlyPathWhenNeeded) {
  MinCostFlow mc(4);
  mc.add_edge(0, 1, 1.0, 0.0);
  mc.add_edge(1, 3, 1.0, 0.0);
  mc.add_edge(0, 2, 5.0, 1.0);
  mc.add_edge(2, 3, 5.0, 0.0);
  const auto r = mc.solve(0, 3, 3.0);
  EXPECT_DOUBLE_EQ(r.flow, 3.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(MinCostFlow, RespectsLimit) {
  MinCostFlow mc(2);
  mc.add_edge(0, 1, 10.0, 0.5);
  const auto r = mc.solve(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(r.flow, 4.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(MinCostFlow, StopsAtMaxFlowBelowLimit) {
  MinCostFlow mc(3);
  mc.add_edge(0, 1, 2.0, 0.0);
  mc.add_edge(1, 2, 2.0, 1.0);
  const auto r = mc.solve(0, 2, 100.0);
  EXPECT_DOUBLE_EQ(r.flow, 2.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(Simplex, SimpleTwoVariableLp) {
  // max 3x + 2y st x + y <= 4, x <= 2  ->  x=2, y=2, obj=10.
  LinearProgram lp;
  lp.a = {{1, 1}, {1, 0}};
  lp.b = {4, 2};
  lp.c = {3, 2};
  const auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 10.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 2.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  lp.a = {{-1.0, 0.0}};
  lp.b = {1.0};
  lp.c = {1.0, 0.0};
  EXPECT_FALSE(solve_lp(lp).has_value());
}

TEST(Simplex, DegenerateConstraintsTerminates) {
  LinearProgram lp;
  lp.a = {{1, 1}, {1, 1}, {2, 2}};
  lp.b = {2, 2, 4};
  lp.c = {1, 1};
  const auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroObjective) {
  LinearProgram lp;
  lp.a = {{1.0}};
  lp.b = {3.0};
  lp.c = {0.0};
  const auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->objective, 0.0);
}

// ---- Allocation solver ------------------------------------------------------

AllocationProblem make_problem(const graph::BipartiteGraph& g,
                               std::vector<double> work,
                               std::vector<int> cores) {
  AllocationProblem p;
  p.graph = &g;
  p.work = std::move(work);
  p.node_cores = std::move(cores);
  return p;
}

TEST(Allocation, BalancedLoadNeedsNoOffloading) {
  const auto ex = graph::build_expander({.nodes = 2, .appranks_per_node = 1,
                                         .degree = 2});
  const auto r = solve_allocation(make_problem(ex.graph, {10.0, 10.0},
                                               {48, 48}));
  EXPECT_NEAR(r.offloaded_cores, 0.0, 1e-6);
  // Each apprank: home cores = 47 (helper on the other node owns 1).
  EXPECT_EQ(r.cores[0][0] + r.cores[0][1], 48);
  EXPECT_EQ(r.cores[0][1], 1);
  EXPECT_EQ(r.cores[1][1], 1);
}

TEST(Allocation, FullImbalanceSplitsEvenly) {
  const auto ex = graph::build_expander({.nodes = 2, .appranks_per_node = 1,
                                         .degree = 2});
  const auto r = solve_allocation(make_problem(ex.graph, {20.0, 0.0},
                                               {48, 48}));
  // Apprank 0 should receive nearly everything on both nodes.
  EXPECT_EQ(r.cores[0][0], 47);  // apprank 1's worker keeps >= 1 on node 0?
  // Apprank 0 home node: 48 cores minus apprank1's helper (1) = 47.
  EXPECT_GE(r.cores[0][1], 46);  // node 1: all but apprank 1's own core
  EXPECT_GE(r.cores[1][0] + r.cores[1][1], 2);  // the >=1-per-worker floor
}

TEST(Allocation, ObjectiveMatchesLpReference) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto ex = graph::build_expander(
        {.nodes = 4, .appranks_per_node = 2, .degree = 2, .seed = seed});
    sim::Rng rng(seed * 101);
    std::vector<double> work;
    for (int a = 0; a < ex.graph.left_count(); ++a) {
      work.push_back(rng.uniform(0.0, 30.0));
    }
    const auto p = make_problem(ex.graph, work, {16, 16, 16, 16});
    const auto flow = solve_allocation(p);
    const double lp = allocation_objective_lp(p);
    EXPECT_NEAR(flow.objective, lp, 1e-5 * std::max(1.0, lp))
        << "seed=" << seed;
  }
}

TEST(Allocation, PerNodeSumsAreExactAndFloored) {
  const auto ex = graph::build_expander({.nodes = 4, .appranks_per_node = 2,
                                         .degree = 3, .seed = 7});
  std::vector<double> work = {50, 1, 1, 1, 1, 1, 1, 30};
  const auto r = solve_allocation(make_problem(ex.graph, work,
                                               {48, 48, 48, 48}));
  std::vector<int> node_sum(4, 0);
  for (int a = 0; a < ex.graph.left_count(); ++a) {
    const auto& nb = ex.graph.neighbors_of_left(a);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      EXPECT_GE(r.cores[static_cast<std::size_t>(a)][j], 1);
      node_sum[static_cast<std::size_t>(nb[j])] +=
          r.cores[static_cast<std::size_t>(a)][j];
    }
  }
  for (int n = 0; n < 4; ++n) EXPECT_EQ(node_sum[static_cast<std::size_t>(n)], 48);
}

TEST(Allocation, ZeroWorkGivesZeroObjective) {
  const auto ex = graph::build_expander({.nodes = 2, .appranks_per_node = 1,
                                         .degree = 2});
  const auto r = solve_allocation(make_problem(ex.graph, {0.0, 0.0},
                                               {8, 8}));
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
  EXPECT_EQ(r.cores[0][0] + r.cores[1][0] + r.cores[0][1] + r.cores[1][1], 16);
}

TEST(Allocation, InfeasibleWhenWorkersExceedCores) {
  const auto ex = graph::build_expander({.nodes = 2, .appranks_per_node = 2,
                                         .degree = 2});
  // Each node hosts 2 appranks + 2 helpers = 4 workers but only 3 cores.
  EXPECT_THROW(
      solve_allocation(make_problem(ex.graph, {1, 1, 1, 1}, {3, 3})),
      InfeasibleAllocation);
}

TEST(Allocation, DegreeOneReducesToPerNodeSplit) {
  const auto ex = graph::build_expander({.nodes = 2, .appranks_per_node = 2,
                                         .degree = 1});
  const auto r = solve_allocation(
      make_problem(ex.graph, {30.0, 10.0, 5.0, 5.0}, {16, 16}));
  // Node 0: appranks 0 and 1 in ratio ~3:1.
  EXPECT_EQ(r.cores[0][0] + r.cores[1][0], 16);
  EXPECT_GT(r.cores[0][0], r.cores[1][0]);
  // Objective is constrained by node 0: (30+10)/16 = 2.5.
  EXPECT_NEAR(r.objective, 2.5, 1e-6);
}

TEST(Allocation, ObjectiveImprovesWithDegree) {
  std::vector<double> work = {40, 4, 4, 4};
  double prev = 1e100;
  for (int degree : {1, 2, 4}) {
    const auto ex = graph::build_expander(
        {.nodes = 4, .appranks_per_node = 1, .degree = degree, .seed = 3});
    const auto r =
        solve_allocation(make_problem(ex.graph, work, {12, 12, 12, 12}));
    EXPECT_LE(r.objective, prev + 1e-9) << "degree=" << degree;
    prev = r.objective;
  }
  // Full connectivity: apprank 0 can own at most 48 - 3*4 = 36 cores (the
  // other appranks' workers keep one each), so t* = 40/36.
  EXPECT_NEAR(prev, 40.0 / 36.0, 1e-6);
}

TEST(Allocation, PrefersLocalCoresAtOptimum) {
  // Two equal loads that fit locally: min-cost routing must not offload.
  const auto ex = graph::build_expander({.nodes = 2, .appranks_per_node = 1,
                                         .degree = 2});
  const auto r = solve_allocation(make_problem(ex.graph, {5.0, 5.0},
                                               {16, 16}));
  EXPECT_NEAR(r.offloaded_cores, 0.0, 1e-9);
  EXPECT_NEAR(r.fractional[0][0], 15.0, 1e-6);
  EXPECT_NEAR(r.fractional[0][1], 1.0, 1e-6);
}

}  // namespace
}  // namespace tlb::solver
