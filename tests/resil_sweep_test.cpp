// Randomized nightly fault sweep (ctest label: resil_sweep).
//
// Generates a batch of random fault scenarios — crashes, slowdowns, link
// degradation, message loss — against heartbeat-mode runs and checks the
// resilience invariants that must hold for *any* schedule of injections:
// every task finishes exactly once at the home runtime, no leases or
// pending offloads survive the run, the iteration count is exact, and the
// counters stay mutually consistent.
//
// The scenario seed comes from TLB_RESIL_SWEEP_SEED (CI passes the
// workflow run id); it defaults to 42 and is always logged so any failure
// reproduces with a one-line env var.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/recovery.hpp"

namespace tlb {
namespace {

std::uint64_t sweep_seed() {
  if (const char* env = std::getenv("TLB_RESIL_SWEEP_SEED")) {
    return std::stoull(env);
  }
  return 42;
}

struct Scenario {
  core::RuntimeConfig cfg;
  apps::SyntheticConfig app;
  fault::FaultPlan plan;
  std::string describe;
};

/// Draws one random scenario. Crash victims are restricted to helpers so
/// the apprank itself survives; at most one crash per apprank keeps every
/// apprank connected (rewire covers the degree-2 disconnection case).
Scenario draw_scenario(std::mt19937_64& rng) {
  Scenario s;
  std::uniform_int_distribution<int> nodes_d(3, 5);
  std::uniform_int_distribution<int> cores_d(4, 12);
  std::uniform_int_distribution<int> degree_d(2, 3);
  const int nodes = nodes_d(rng);
  s.cfg.cluster = sim::ClusterSpec::homogeneous(nodes, cores_d(rng));
  s.cfg.appranks_per_node = 1;
  s.cfg.degree = std::min(degree_d(rng), nodes - 1);
  s.cfg.policy = (rng() % 2 == 0) ? core::PolicyKind::Global
                                  : core::PolicyKind::Local;
  s.cfg.resil.detection = resil::DetectionMode::Heartbeat;

  std::uniform_int_distribution<int> iters_d(4, 8);
  std::uniform_int_distribution<int> tasks_d(40, 160);
  std::uniform_real_distribution<double> imb_d(1.2, 3.0);
  s.app.appranks = nodes;
  s.app.iterations = iters_d(rng);
  s.app.tasks_per_rank = tasks_d(rng);
  s.app.imbalance = imb_d(rng);

  std::uniform_real_distribution<double> at_d(0.3, 4.0);
  std::uniform_real_distribution<double> dur_d(0.2, 2.0);
  s.describe = "nodes=" + std::to_string(nodes) +
               " degree=" + std::to_string(s.cfg.degree) +
               " tasks=" + std::to_string(s.app.tasks_per_rank);

  // 0-2 crashes on distinct appranks' first helpers.
  const int crashes = static_cast<int>(rng() % 3);
  for (int c = 0; c < crashes; ++c) {
    const int apprank = static_cast<int>(rng() % static_cast<unsigned>(nodes));
    // Helper index 1 always exists (degree >= 2). The plan may name the
    // same victim twice across draws; crash_worker is idempotent.
    const double at = at_d(rng);
    s.plan.crash_worker(-(apprank + 1), at);  // placeholder, fixed below
    s.describe += " crash(apprank=" + std::to_string(apprank) + ")";
  }

  // 0-1 node slowdowns.
  if (rng() % 2 == 0) {
    std::uniform_real_distribution<double> factor_d(0.3, 0.8);
    const double at = at_d(rng);
    s.plan.slow_node(static_cast<int>(rng() % static_cast<unsigned>(nodes)),
                     factor_d(rng), at, at + dur_d(rng));
    s.describe += " slowdown";
  }

  // 0-1 link degradations (latency x2..x50 with jitter).
  if (rng() % 2 == 0) {
    std::uniform_real_distribution<double> mult_d(2.0, 50.0);
    const double at = at_d(rng);
    s.plan.degrade_link(mult_d(rng), 1.0, 1e-6, at, at + dur_d(rng));
    s.describe += " degrade";
  }

  // 0-1 lossy windows (up to 40% per-attempt loss; retransmission covers it).
  if (rng() % 2 == 0) {
    std::uniform_real_distribution<double> rate_d(0.05, 0.4);
    const double at = at_d(rng);
    s.plan.lose_messages(rate_d(rng), at, at + dur_d(rng));
    s.describe += " loss";
  }
  return s;
}

TEST(ResilSweep, RandomFaultScenariosPreserveInvariants) {
  const std::uint64_t seed = sweep_seed();
  // Always log the seed so a nightly failure is a one-liner to reproduce:
  //   TLB_RESIL_SWEEP_SEED=<seed> ./tlb_resil_sweep
  std::printf("[resil_sweep] seed=%llu\n",
              static_cast<unsigned long long>(seed));
  std::mt19937_64 rng(seed);

  constexpr int kScenarios = 12;
  for (int round = 0; round < kScenarios; ++round) {
    Scenario s = draw_scenario(rng);
    core::ClusterRuntime rt(s.cfg);

    // Resolve the crash placeholders now that the topology exists.
    fault::FaultPlan plan;
    for (const auto& ev : s.plan.events()) {
      if (ev.kind == fault::FaultKind::WorkerCrash) {
        const int apprank = -ev.target - 1;
        plan.crash_worker(rt.topology().workers_of_apprank(apprank)[1], ev.at);
      } else if (ev.kind == fault::FaultKind::NodeSlowdown) {
        plan.slow_node(ev.target, ev.factor, ev.at, ev.until);
      } else if (ev.kind == fault::FaultKind::LinkDegrade) {
        plan.degrade_link(ev.link.latency_mult, ev.link.bandwidth_mult,
                          ev.link.jitter_max, ev.at, ev.until);
      } else {
        plan.lose_messages(ev.link.loss_rate, ev.at, ev.until);
      }
    }

    SCOPED_TRACE("round " + std::to_string(round) + ": " + s.describe);
    apps::SyntheticWorkload wl(s.app);
    fault::FaultInjector injector(std::move(plan));
    metrics::RecoverySeries recovery;
    injector.attach(rt, &recovery);
    const core::RunResult r = rt.run(wl);

    // The run terminated with every iteration accounted for (no deadlock;
    // the engine would otherwise have drained early).
    ASSERT_EQ(r.iteration_times.size(),
              static_cast<std::size_t>(s.app.iterations));

    // Zero lost tasks, exactly-once completion accounting.
    const auto& pool = rt.tasks();
    for (nanos::TaskId id = 0; id < pool.size(); ++id) {
      const nanos::Task& t = pool.get(id);
      ASSERT_EQ(t.state, nanos::TaskState::Finished) << "task " << id;
      ASSERT_GE(t.executions, 1) << "task " << id;
      ASSERT_LE(t.executions, 1 + t.reexecutions) << "task " << id;
    }

    // The control plane drained completely.
    EXPECT_EQ(rt.outstanding_leases(), 0u);
    for (int w = 0; w < rt.topology().worker_count(); ++w) {
      EXPECT_EQ(rt.worker_pending(w), 0) << "worker " << w;
      EXPECT_EQ(rt.worker_inflight(w), 0) << "worker " << w;
    }

    // Counter consistency.
    EXPECT_EQ(r.detections + r.false_suspicions,
              recovery.detections().size());
    EXPECT_EQ(recovery.false_positive_count(),
              static_cast<int>(r.false_suspicions));
    EXPECT_GE(r.quarantine_ejections, r.detections + r.false_suspicions);
    EXPECT_LE(r.quarantine_readmissions, r.quarantine_ejections);
    if (r.detections > 0) {
      EXPECT_GT(r.mean_detection_latency(), 0.0);
    }
  }
}

// Elastic membership sweep: random join (grow_node) and leave
// (retire_node) events race a helper crash on a heartbeat-mode run. The
// same exactly-once invariants must hold — elasticity reuses the
// crash-recovery rewire machinery, so a node leaving voluntarily and a
// node dying must be indistinguishable to the completion accounting.
TEST(ResilSweep, ConcurrentJoinLeaveAndCrashPreserveExactlyOnce) {
  const std::uint64_t seed = sweep_seed() ^ 0x9e3779b97f4a7c15ull;
  std::printf("[resil_sweep] elastic seed=%llu\n",
              static_cast<unsigned long long>(seed));
  std::mt19937_64 rng(seed);

  constexpr int kScenarios = 8;
  for (int round = 0; round < kScenarios; ++round) {
    std::uniform_int_distribution<int> nodes_d(3, 4);
    std::uniform_int_distribution<int> cores_d(4, 8);
    const int nodes = nodes_d(rng);

    core::RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::homogeneous(nodes, cores_d(rng));
    cfg.appranks_per_node = 1;
    cfg.degree = 2;
    cfg.policy = (rng() % 2 == 0) ? core::PolicyKind::Global
                                  : core::PolicyKind::Local;
    cfg.resil.detection = resil::DetectionMode::Heartbeat;

    apps::SyntheticConfig app;
    app.appranks = nodes;
    std::uniform_int_distribution<int> iters_d(4, 6);
    std::uniform_int_distribution<int> tasks_d(60, 140);
    std::uniform_real_distribution<double> imb_d(1.5, 2.5);
    app.iterations = iters_d(rng);
    app.tasks_per_rank = tasks_d(rng);
    app.imbalance = imb_d(rng);

    const int joins = 1 + static_cast<int>(rng() % 2);
    const bool with_crash = (rng() % 2 == 0);
    SCOPED_TRACE("round " + std::to_string(round) +
                 ": nodes=" + std::to_string(nodes) +
                 " joins=" + std::to_string(joins) +
                 (with_crash ? " +crash" : ""));

    sim::Engine engine;
    core::ClusterRuntime rt(cfg, &engine);
    apps::SyntheticWorkload wl(app);
    bool done = false;
    rt.start(wl, [&] { done = true; });

    // Joins at random early times; each joined node leaves again a random
    // interval later — so a leave can race the crash-recovery rewire, the
    // heartbeat detector, and other membership churn.
    std::uniform_real_distribution<double> join_d(0.2, 1.5);
    std::uniform_real_distribution<double> stay_d(0.4, 1.5);
    std::vector<int> joined(static_cast<std::size_t>(joins), -1);
    for (int j = 0; j < joins; ++j) {
      const double at = join_d(rng);
      const double leave_at = at + stay_d(rng);
      sim::NodeSpec spec;
      spec.cores = cfg.cluster.nodes.front().cores;
      engine.at(at, [&rt, &joined, &done, j, spec] {
        if (!done) joined[static_cast<std::size_t>(j)] = rt.grow_node(spec);
      });
      engine.at(leave_at, [&rt, &joined, &done, j] {
        const int n = joined[static_cast<std::size_t>(j)];
        if (!done && n >= 0 && !rt.node_retired(n)) rt.retire_node(n);
      });
    }

    metrics::RecoverySeries recovery;
    fault::FaultInjector injector = [&] {
      fault::FaultPlan plan;
      if (with_crash) {
        std::uniform_real_distribution<double> crash_d(0.3, 2.0);
        const int apprank =
            static_cast<int>(rng() % static_cast<unsigned>(nodes));
        plan.crash_worker(rt.topology().workers_of_apprank(apprank)[1],
                          crash_d(rng));
      }
      return fault::FaultInjector(std::move(plan));
    }();
    injector.attach(rt, &recovery);

    engine.run();
    const core::RunResult r = rt.finalize();
    ASSERT_TRUE(done);
    ASSERT_EQ(r.iteration_times.size(),
              static_cast<std::size_t>(app.iterations));

    // Exactly-once completion across joins, leaves, and the crash.
    const auto& pool = rt.tasks();
    for (nanos::TaskId id = 0; id < pool.size(); ++id) {
      const nanos::Task& t = pool.get(id);
      ASSERT_EQ(t.state, nanos::TaskState::Finished) << "task " << id;
      ASSERT_GE(t.executions, 1) << "task " << id;
      ASSERT_LE(t.executions, 1 + t.reexecutions) << "task " << id;
    }
    EXPECT_EQ(rt.outstanding_leases(), 0u);
    for (int w = 0; w < rt.topology().worker_count(); ++w) {
      EXPECT_EQ(rt.worker_pending(w), 0) << "worker " << w;
      EXPECT_EQ(rt.worker_inflight(w), 0) << "worker " << w;
    }
    // Retired nodes' workers must be flagged and never counted as crashed.
    for (int j = 0; j < joins; ++j) {
      const int n = joined[static_cast<std::size_t>(j)];
      if (n >= 0 && rt.node_retired(n)) {
        for (core::WorkerId w : rt.topology().workers_on_node(n)) {
          EXPECT_TRUE(rt.worker_retired(w)) << "worker " << w;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tlb
