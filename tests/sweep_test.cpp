// Property sweeps: runtime invariants that must hold across the whole
// configuration space (nodes x ranks-per-node x degree x policy x
// imbalance), plus end-to-end checks of the trace/report exporters on a
// real run.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "dlb/report.hpp"
#include "metrics/imbalance.hpp"
#include "trace/paraver.hpp"

namespace tlb {
namespace {

struct SweepCase {
  int nodes;
  int cores;
  int per_node;
  int degree;
  core::PolicyKind policy;
  double imbalance;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  const std::string p = core::to_string(c.policy);
  return "n" + std::to_string(c.nodes) + "x" + std::to_string(c.cores) +
         "_r" + std::to_string(c.per_node) + "_d" +
         std::to_string(c.degree) + "_" + p + "_i" +
         std::to_string(static_cast<int>(c.imbalance * 10));
}

class RuntimeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RuntimeSweep, InvariantsHold) {
  const SweepCase& c = GetParam();
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(c.nodes, c.cores);
  cfg.appranks_per_node = c.per_node;
  cfg.degree = c.degree;
  cfg.policy = c.policy;
  cfg.lewi = c.policy != core::PolicyKind::None;
  cfg.drom = c.policy != core::PolicyKind::None;
  cfg.global_period = 0.25;
  cfg.local_period = 0.05;

  apps::SyntheticConfig scfg;
  scfg.appranks = c.nodes * c.per_node;
  scfg.iterations = 3;
  scfg.tasks_per_rank = 24;
  scfg.imbalance = c.imbalance;
  apps::SyntheticWorkload wl(scfg);

  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  // 1. Every task executed exactly once, none lost.
  EXPECT_EQ(r.tasks_total,
            static_cast<std::uint64_t>(scfg.appranks * scfg.iterations *
                                       scfg.tasks_per_rank));
  // 2. The makespan never beats the perfect-balance bound.
  EXPECT_GE(r.makespan, r.perfect_time * 0.999);
  // 3. Work accounting is consistent.
  EXPECT_GE(r.work_total, r.work_offloaded);
  // 4. Offloading requires helpers.
  if (c.degree == 1) {
    EXPECT_EQ(r.tasks_offloaded, 0u);
    EXPECT_EQ(r.transfer_bytes, 0u);
  }
  // 5. Ownership: per (node, apprank) owned counts stay within node
  //    capacity and every resident worker keeps >= 1 core at the end.
  const auto& topo = rt.topology();
  for (int n = 0; n < topo.node_count(); ++n) {
    double owned_sum = 0.0;
    for (core::WorkerId w : topo.workers_on_node(n)) {
      const double owned =
          rt.recorder().owned(n, topo.worker(w).apprank).value_at(r.makespan);
      EXPECT_GE(owned, 1.0);
      owned_sum += owned;
    }
    EXPECT_DOUBLE_EQ(owned_sum, static_cast<double>(c.cores));
    // 6. Busy cores never exceed the node's capacity.
    EXPECT_LE(rt.recorder().node_busy(n).max_value(),
              static_cast<double>(c.cores) + 1e-9);
  }
  // 7. Iteration accounting.
  EXPECT_EQ(static_cast<int>(r.iteration_times.size()), scfg.iterations);
  double sum = 0.0;
  for (double t : r.iteration_times) sum += t;
  EXPECT_NEAR(sum, r.makespan, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Space, RuntimeSweep,
    ::testing::Values(
        SweepCase{1, 4, 1, 1, core::PolicyKind::None, 1.0},
        SweepCase{2, 4, 1, 2, core::PolicyKind::Global, 2.0},
        SweepCase{2, 8, 2, 2, core::PolicyKind::Global, 1.5},
        SweepCase{2, 8, 2, 2, core::PolicyKind::Local, 1.5},
        SweepCase{4, 4, 1, 1, core::PolicyKind::Global, 3.0},
        SweepCase{4, 8, 1, 3, core::PolicyKind::Global, 2.5},
        SweepCase{4, 8, 1, 3, core::PolicyKind::Local, 2.5},
        SweepCase{4, 8, 2, 2, core::PolicyKind::Global, 4.0},
        SweepCase{8, 8, 1, 4, core::PolicyKind::Global, 2.0},
        SweepCase{8, 8, 1, 4, core::PolicyKind::Local, 2.0},
        SweepCase{8, 16, 2, 4, core::PolicyKind::Global, 3.0},
        SweepCase{8, 4, 1, 2, core::PolicyKind::None, 1.5},
        SweepCase{16, 8, 1, 4, core::PolicyKind::Global, 2.0},
        SweepCase{16, 8, 2, 3, core::PolicyKind::Local, 1.2}),
    case_name);

TEST(Exporters, ParaverAndTalpFromRealRun) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(2, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  apps::SyntheticConfig scfg;
  scfg.appranks = 2;
  scfg.iterations = 2;
  scfg.tasks_per_rank = 16;
  scfg.imbalance = 2.0;
  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  const std::string prv = trace::to_paraver(rt.recorder(), r.makespan);
  EXPECT_EQ(prv.rfind("#Paraver", 0), 0u);
  // At least one busy event per apprank made it into the trace.
  EXPECT_NE(prv.find(":90000001:"), std::string::npos);
  EXPECT_NE(prv.find(":90000002:"), std::string::npos);
  const std::string row = trace::paraver_row_labels(rt.recorder());
  EXPECT_NE(row.find("LEVEL THREAD SIZE 4"), std::string::npos);
}

TEST(Sweep, SlowNodeMakespanMonotoneInSpeed) {
  double prev = 0.0;
  for (double speed : {0.4, 0.6, 0.8, 1.0}) {
    core::RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::with_slow_node(4, 8, 0, speed);
    cfg.appranks_per_node = 1;
    cfg.degree = 1;
    cfg.policy = core::PolicyKind::None;
    cfg.lewi = false;
    cfg.drom = false;
    apps::SyntheticConfig scfg;
    scfg.appranks = 4;
    scfg.iterations = 2;
    scfg.tasks_per_rank = 32;
    apps::SyntheticWorkload wl(scfg);
    const auto r = core::ClusterRuntime(cfg).run(wl);
    if (prev > 0.0) {
      EXPECT_LT(r.makespan, prev) << "speed " << speed;
    }
    prev = r.makespan;
  }
}

TEST(Sweep, HigherDegreeNeverMuchWorseOnImbalance) {
  // Weak monotonicity: adding connectivity should not cost more than a
  // small constant factor on an imbalanced load.
  double prev = 1e100;
  for (int degree : {1, 2, 3, 4}) {
    core::RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
    cfg.appranks_per_node = 1;
    cfg.degree = degree;
    apps::SyntheticConfig scfg;
    scfg.appranks = 4;
    scfg.iterations = 3;
    scfg.tasks_per_rank = 48;
    scfg.imbalance = 2.5;
    apps::SyntheticWorkload wl(scfg);
    const auto r = core::ClusterRuntime(cfg).run(wl);
    EXPECT_LT(r.makespan, prev * 1.10) << "degree " << degree;
    prev = std::min(prev, r.makespan);
  }
}

}  // namespace
}  // namespace tlb
