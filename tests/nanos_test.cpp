// Unit tests for the task runtime substrate: dependency graph and data
// location tracking.
#include <gtest/gtest.h>

#include "nanos/data_location.hpp"
#include "nanos/dependency_graph.hpp"
#include "nanos/task.hpp"

namespace tlb::nanos {
namespace {

AccessRegion in(std::uint64_t start, std::uint64_t size) {
  return {start, size, AccessMode::In};
}
AccessRegion out(std::uint64_t start, std::uint64_t size) {
  return {start, size, AccessMode::Out};
}
AccessRegion inout(std::uint64_t start, std::uint64_t size) {
  return {start, size, AccessMode::InOut};
}

struct DepFixture {
  TaskPool pool;
  DependencyGraph graph{pool};

  TaskId add(std::vector<AccessRegion> accesses, bool* ready = nullptr) {
    const TaskId id = pool.create(0, 1.0, std::move(accesses));
    const bool r = graph.register_task(id);
    if (ready != nullptr) *ready = r;
    return id;
  }
};

TEST(DependencyGraph, IndependentTasksAreReady) {
  DepFixture f;
  bool r1 = false;
  bool r2 = false;
  f.add({out(0, 10)}, &r1);
  f.add({out(100, 10)}, &r2);
  EXPECT_TRUE(r1);
  EXPECT_TRUE(r2);
  EXPECT_EQ(f.graph.edge_count(), 0u);
}

TEST(DependencyGraph, ReadAfterWrite) {
  DepFixture f;
  const TaskId w = f.add({out(0, 10)});
  bool ready = true;
  const TaskId r = f.add({in(0, 10)}, &ready);
  EXPECT_FALSE(ready);
  const auto now_ready = f.graph.on_task_finished(w);
  ASSERT_EQ(now_ready.size(), 1u);
  EXPECT_EQ(now_ready[0], r);
}

TEST(DependencyGraph, WriteAfterWrite) {
  DepFixture f;
  const TaskId w1 = f.add({out(0, 10)});
  bool ready = true;
  f.add({out(0, 10)}, &ready);
  EXPECT_FALSE(ready);
  EXPECT_EQ(f.graph.on_task_finished(w1).size(), 1u);
}

TEST(DependencyGraph, WriteAfterRead) {
  DepFixture f;
  const TaskId w = f.add({out(0, 10)});
  f.graph.on_task_finished(w);
  bool r_ready = false;
  const TaskId r = f.add({in(0, 10)}, &r_ready);
  EXPECT_TRUE(r_ready);  // writer already finished
  bool w2_ready = true;
  f.add({out(0, 10)}, &w2_ready);
  EXPECT_FALSE(w2_ready);  // WAR on the live reader
  EXPECT_EQ(f.graph.on_task_finished(r).size(), 1u);
}

TEST(DependencyGraph, ConcurrentReadersShareReadiness) {
  DepFixture f;
  const TaskId w = f.add({out(0, 10)});
  bool ra = true;
  bool rb = true;
  f.add({in(0, 10)}, &ra);
  f.add({in(0, 10)}, &rb);
  EXPECT_FALSE(ra);
  EXPECT_FALSE(rb);
  EXPECT_EQ(f.graph.on_task_finished(w).size(), 2u);  // both release
}

TEST(DependencyGraph, WriterWaitsForAllReaders) {
  DepFixture f;
  const TaskId w = f.add({out(0, 10)});
  f.graph.on_task_finished(w);
  const TaskId r1 = f.add({in(0, 10)});
  const TaskId r2 = f.add({in(0, 10)});
  bool w2_ready = true;
  f.add({out(0, 10)}, &w2_ready);
  EXPECT_FALSE(w2_ready);
  EXPECT_TRUE(f.graph.on_task_finished(r1).empty());
  EXPECT_EQ(f.graph.on_task_finished(r2).size(), 1u);
}

TEST(DependencyGraph, PartialOverlapCreatesDependency) {
  DepFixture f;
  const TaskId w = f.add({out(0, 10)});
  bool ready = true;
  f.add({in(5, 10)}, &ready);  // overlaps bytes 5..9
  EXPECT_FALSE(ready);
  EXPECT_EQ(f.graph.on_task_finished(w).size(), 1u);
}

TEST(DependencyGraph, DisjointRegionsCommute) {
  DepFixture f;
  f.add({out(0, 10)});
  bool ready = false;
  f.add({out(10, 10)}, &ready);  // adjacent, not overlapping
  EXPECT_TRUE(ready);
}

TEST(DependencyGraph, InOutActsAsReadAndWrite) {
  DepFixture f;
  const TaskId a = f.add({inout(0, 10)});
  bool b_ready = true;
  const TaskId b = f.add({inout(0, 10)}, &b_ready);
  EXPECT_FALSE(b_ready);
  bool c_ready = true;
  f.add({inout(0, 10)}, &c_ready);
  EXPECT_FALSE(c_ready);
  EXPECT_EQ(f.graph.on_task_finished(a).size(), 1u);
  EXPECT_EQ(f.graph.on_task_finished(b).size(), 1u);
}

TEST(DependencyGraph, ChainReleasesInOrder) {
  DepFixture f;
  std::vector<TaskId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(f.add({inout(0, 8)}));
  for (int i = 0; i + 1 < 5; ++i) {
    const auto ready = f.graph.on_task_finished(chain[static_cast<std::size_t>(i)]);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], chain[static_cast<std::size_t>(i) + 1]);
  }
}

TEST(DependencyGraph, MultiRegionTaskDedupesPredecessors) {
  DepFixture f;
  const TaskId w = f.add({out(0, 10), out(20, 10)});
  bool ready = true;
  const TaskId r = f.add({in(0, 5), in(25, 5)}, &ready);
  EXPECT_FALSE(ready);
  EXPECT_EQ(f.pool.get(r).deps_remaining, 1);
  EXPECT_EQ(f.graph.on_task_finished(w).size(), 1u);
}

TEST(DependencyGraph, LiveTaskCountTracksLifecycle) {
  DepFixture f;
  const TaskId a = f.add({out(0, 4)});
  const TaskId b = f.add({in(0, 4)});
  EXPECT_EQ(f.graph.live_tasks(), 2u);
  f.graph.on_task_finished(a);
  EXPECT_EQ(f.graph.live_tasks(), 1u);
  f.graph.on_task_finished(b);
  EXPECT_EQ(f.graph.live_tasks(), 0u);
}

TEST(DependencyGraph, ZeroSizeRegionIsIgnored) {
  DepFixture f;
  f.add({out(0, 10)});
  bool ready = false;
  f.add({in(0, 0)}, &ready);
  EXPECT_TRUE(ready);
}

TEST(DependencyGraph, ManyDisjointWritersScale) {
  DepFixture f;
  for (int i = 0; i < 1000; ++i) {
    bool ready = false;
    f.add({out(static_cast<std::uint64_t>(i) * 64, 64)}, &ready);
    ASSERT_TRUE(ready);
  }
  EXPECT_EQ(f.graph.edge_count(), 0u);
}

TEST(DataLocations, DefaultsToHome) {
  DataLocations loc(3);
  EXPECT_EQ(loc.location_of(0), 3);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 3), 0u);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 5), 100u);
}

TEST(DataLocations, TaskExecutionMovesOutputs) {
  DataLocations loc(0);
  loc.task_executed({out(0, 100)}, 2);
  EXPECT_EQ(loc.location_of(50), 2);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 2), 0u);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 0), 100u);
}

TEST(DataLocations, PureInputsDoNotRelocate) {
  DataLocations loc(0);
  loc.task_executed({in(0, 100)}, 2);
  EXPECT_EQ(loc.location_of(50), 0);
}

TEST(DataLocations, PartialOverwrite) {
  DataLocations loc(0);
  loc.task_executed({out(0, 100)}, 1);
  loc.task_executed({out(25, 50)}, 2);
  EXPECT_EQ(loc.location_of(0), 1);
  EXPECT_EQ(loc.location_of(30), 2);
  EXPECT_EQ(loc.location_of(80), 1);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 1), 50u);
}

TEST(DataLocations, PullMovesAndPrices) {
  DataLocations loc(0);
  loc.task_executed({out(0, 100)}, 2);
  EXPECT_EQ(loc.pull({in(0, 100)}, 0), 100u);
  EXPECT_EQ(loc.location_of(10), 0);
  EXPECT_EQ(loc.pull({in(0, 100)}, 0), 0u);  // already home
}

TEST(DataLocations, ResidentBytesComplementMissing) {
  DataLocations loc(0);
  loc.task_executed({out(0, 60)}, 1);
  const std::vector<AccessRegion> acc = {in(0, 100)};
  EXPECT_EQ(loc.resident_input_bytes(acc, 1), 60u);
  EXPECT_EQ(loc.missing_input_bytes(acc, 1), 40u);
  EXPECT_EQ(loc.resident_input_bytes(acc, 0), 40u);
}

TEST(DataLocations, OutputRegionsIgnoredForTransferCost) {
  DataLocations loc(0);
  EXPECT_EQ(loc.missing_input_bytes({out(0, 100)}, 5), 0u);
}

TEST(DataLocations, ScatteredSegmentsAccumulate) {
  DataLocations loc(0);
  loc.task_executed({out(0, 10)}, 1);
  loc.task_executed({out(20, 10)}, 2);
  loc.task_executed({out(40, 10)}, 1);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 50)}, 1), 20u + 10u);
}

TEST(DataLocations, AdjacentRangesBehaveAsOneSegment) {
  // Two writes landing back-to-back on the same node must scan exactly
  // like one coalesced segment: no seam at the shared boundary.
  DataLocations loc(0);
  loc.task_executed({out(0, 50)}, 1);
  loc.task_executed({out(50, 50)}, 1);
  EXPECT_EQ(loc.location_of(49), 1);
  EXPECT_EQ(loc.location_of(50), 1);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 1), 0u);
  EXPECT_EQ(loc.missing_input_bytes({in(0, 100)}, 0), 100u);
  // A scan straddling just the seam sees contiguous residency.
  EXPECT_EQ(loc.resident_input_bytes({in(40, 20)}, 1), 20u);
  // And the per-source breakdown reports a single holder.
  const auto sources = loc.missing_by_source({in(0, 100)}, 0);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0].first, 1);
  EXPECT_EQ(sources[0].second, 100u);
}

TEST(DataLocations, PullOverPartiallyResidentRegion) {
  // [0, 100) lives on node 2; the pulled region [50, 150) is half there,
  // half home. The pull moves every non-resident byte and leaves the
  // untouched prefix where it was.
  DataLocations loc(0);
  loc.task_executed({out(0, 100)}, 2);
  EXPECT_EQ(loc.pull({in(50, 100)}, 1), 100u);
  EXPECT_EQ(loc.location_of(49), 2);   // untouched prefix
  EXPECT_EQ(loc.location_of(50), 1);
  EXPECT_EQ(loc.location_of(149), 1);
  EXPECT_EQ(loc.location_of(150), 0);  // beyond the pull: still home
  EXPECT_EQ(loc.pull({in(50, 100)}, 1), 0u);  // idempotent
}

TEST(DataLocations, MissingBytesAtSegmentBoundaries) {
  // Segments [0,30) on 1 and [30,60) on 2, remainder home on 0. A region
  // crossing both boundaries must count each span against the right
  // holder.
  DataLocations loc(0);
  loc.task_executed({out(0, 30)}, 1);
  loc.task_executed({out(30, 30)}, 2);
  EXPECT_EQ(loc.missing_input_bytes({in(10, 40)}, 2), 20u);  // [10,30)
  EXPECT_EQ(loc.missing_input_bytes({in(10, 40)}, 1), 20u);  // [30,50)
  EXPECT_EQ(loc.missing_input_bytes({in(10, 40)}, 0), 40u);  // both
  EXPECT_EQ(loc.missing_input_bytes({in(10, 60)}, 0), 50u);  // + home tail
}

TEST(DataLocations, MissingBySourceGroupsByHolder) {
  DataLocations loc(0);
  loc.task_executed({out(0, 30)}, 1);
  loc.task_executed({out(30, 30)}, 2);
  // From node 3's view, three holders contribute: home, node 1, node 2 —
  // reported in ascending node order, totals matching the scalar scan.
  const auto sources = loc.missing_by_source({in(0, 90)}, 3);
  ASSERT_EQ(sources.size(), 3u);
  EXPECT_EQ(sources[0], (std::pair<int, std::uint64_t>{0, 30u}));
  EXPECT_EQ(sources[1], (std::pair<int, std::uint64_t>{1, 30u}));
  EXPECT_EQ(sources[2], (std::pair<int, std::uint64_t>{2, 30u}));
  std::uint64_t total = 0;
  for (const auto& [node, bytes] : sources) {
    (void)node;
    total += bytes;
  }
  EXPECT_EQ(total, loc.missing_input_bytes({in(0, 90)}, 3));
  // A holder's own view excludes itself.
  const auto from_one = loc.missing_by_source({in(0, 90)}, 1);
  ASSERT_EQ(from_one.size(), 2u);
  EXPECT_EQ(from_one[0].first, 0);
  EXPECT_EQ(from_one[1].first, 2);
}

TEST(DataLocations, PullBySourceRelocatesAndReports) {
  DataLocations loc(0);
  loc.task_executed({out(0, 30)}, 1);
  loc.task_executed({out(30, 30)}, 2);
  const auto moved = loc.pull_by_source({in(0, 90)}, 0);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], (std::pair<int, std::uint64_t>{1, 30u}));
  EXPECT_EQ(moved[1], (std::pair<int, std::uint64_t>{2, 30u}));
  EXPECT_EQ(loc.missing_input_bytes({in(0, 90)}, 0), 0u);
  EXPECT_TRUE(loc.pull_by_source({in(0, 90)}, 0).empty());  // idempotent
}

}  // namespace
}  // namespace tlb::nanos
