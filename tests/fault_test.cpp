// Tests of the fault-injection subsystem (tlb::fault): perturbation plans,
// resilience of the runtime to slowdowns and crashes, the no-op identity of
// zero-magnitude faults, and single-seed determinism of perturbed runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/recovery.hpp"

namespace tlb {
namespace {

core::RuntimeConfig fault_cluster(int nodes, int cores, int degree) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(nodes, cores);
  cfg.appranks_per_node = 1;
  cfg.degree = degree;
  cfg.policy = core::PolicyKind::Global;
  return cfg;
}

apps::SyntheticConfig synth(int appranks, int iterations, int tasks,
                            double imbalance) {
  apps::SyntheticConfig scfg;
  scfg.appranks = appranks;
  scfg.iterations = iterations;
  scfg.tasks_per_rank = tasks;
  scfg.imbalance = imbalance;
  return scfg;
}

std::vector<const trace::StepSeries*> busy_rows(const core::ClusterRuntime& rt) {
  std::vector<const trace::StepSeries*> rows;
  for (int n = 0; n < rt.topology().node_count(); ++n) {
    rows.push_back(&rt.recorder().node_busy(n));
  }
  return rows;
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  EXPECT_THROW(
      [] {
        fault::FaultPlan p;
        p.slow_node(0, 0.0, 1.0);  // factor must be positive
        p.validate();
      }(),
      std::invalid_argument);
  EXPECT_THROW(
      [] {
        fault::FaultPlan p;
        p.lose_messages(1.0, 1.0);  // certain loss would never deliver
        p.validate();
      }(),
      std::invalid_argument);
  EXPECT_THROW(
      [] {
        fault::FaultPlan p;
        p.degrade_link(2.0, 0.5, 0.0, /*at=*/5.0, /*until=*/1.0);
        p.validate();
      }(),
      std::invalid_argument);
  fault::FaultPlan ok;
  ok.slow_node(1, 1.0 / 3.0, 2.0, 6.0).lose_messages(0.1, 0.0, 1.0);
  EXPECT_NO_THROW(ok.validate());
  EXPECT_EQ(ok.events().size(), 2u);
}

// Acceptance (a): a mid-run 3x node slowdown is re-balanced by the global
// policy — the node imbalance re-converges below 1.1 within a bounded
// number of solver periods.
TEST(Fault, SlowdownReconverges) {
  core::RuntimeConfig cfg = fault_cluster(4, 16, 3);
  cfg.global_period = 1.0;
  const double inject_at = 3.0;

  apps::SyntheticWorkload wl(synth(4, 16, 240, 1.0));
  core::ClusterRuntime rt(cfg);
  fault::FaultInjector injector(
      fault::FaultPlan().slow_node(/*node=*/0, 1.0 / 3.0, inject_at));
  metrics::RecoverySeries recovery;
  injector.attach(rt, &recovery);
  const auto r = rt.run(wl);

  ASSERT_EQ(recovery.events().size(), 1u);
  EXPECT_FALSE(rt.recorder().marks().empty());

  // Analyse up to just before the end-of-run drain (the final iteration's
  // wind-down leaves only stragglers busy, which is not imbalance), with
  // bins of roughly one iteration so intra-iteration barrier drains do not
  // register as imbalance.
  const double horizon = r.makespan * 0.95;
  const auto reports =
      recovery.analyse(busy_rows(rt), 0.0, horizon, 12, 1.10, 2);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].reconverge_time, 0.0) << "never re-converged";
  EXPECT_LE(reports[0].reconverge_time, 6.0 * cfg.global_period);
  EXPECT_GT(reports[0].goodput_lost, 0.0);
}

// Acceptance (b): when a helper crashes, its queued/running offloaded
// tasks are detected lost and re-executed exactly once elsewhere, and the
// iteration still completes.
TEST(Fault, CrashedHelperTasksReexecutedOnce) {
  core::RuntimeConfig cfg = fault_cluster(4, 16, 3);
  const apps::SyntheticConfig scfg = synth(4, 8, 240, 2.5);

  apps::SyntheticWorkload wl_clean(scfg);
  const auto clean = core::ClusterRuntime(cfg).run(wl_clean);

  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  // Crash a helper of the overloaded apprank mid-run: it will be running
  // offloaded tasks at that point.
  const core::WorkerId victim = rt.topology().workers_of_apprank(0)[1];
  ASSERT_FALSE(rt.topology().worker(victim).is_home);
  fault::FaultInjector injector(
      fault::FaultPlan().crash_worker(victim, clean.makespan * 0.45));
  injector.attach(rt);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.workers_crashed, 1u);
  EXPECT_FALSE(rt.worker_alive(victim));
  EXPECT_GT(r.tasks_reexecuted, 0u);
  EXPECT_EQ(r.iteration_times.size(), static_cast<std::size_t>(scfg.iterations));

  std::uint64_t reexec_total = 0;
  const auto& pool = rt.tasks();
  for (nanos::TaskId id = 0; id < pool.size(); ++id) {
    const nanos::Task& t = pool.get(id);
    EXPECT_EQ(t.state, nanos::TaskState::Finished);
    EXPECT_LE(t.reexecutions, 1) << "task rescued more than once";
    EXPECT_EQ(t.executions, 1 + t.reexecutions)
        << "every task runs once, plus once per rescue";
    if (t.reexecutions > 0) {
      EXPECT_NE(t.executed_worker, victim)
          << "a rescued task may not land back on the crashed worker";
    }
    reexec_total += static_cast<std::uint64_t>(t.reexecutions);
  }
  EXPECT_EQ(reexec_total, r.tasks_reexecuted);
}

// Acceptance (c): a plan whose faults have zero magnitude (speed factor
// 1.0, link multipliers 1.0, loss rate 0) leaves the simulated execution
// bit-identical to a run without the fault subsystem. (Only the injector's
// own timer events differ, which affects the diagnostic event counter.)
TEST(Fault, ZeroMagnitudeFaultsAreBitIdentical) {
  core::RuntimeConfig cfg = fault_cluster(4, 8, 2);
  const apps::SyntheticConfig scfg = synth(4, 6, 120, 2.0);

  apps::SyntheticWorkload wl_a(scfg);
  core::ClusterRuntime rt_a(cfg);
  const auto a = rt_a.run(wl_a);

  apps::SyntheticWorkload wl_b(scfg);
  core::ClusterRuntime rt_b(cfg);
  fault::FaultInjector injector(fault::FaultPlan()
                                    .slow_node(0, 1.0, 0.5, 2.0)
                                    .degrade_link(1.0, 1.0, 0.0, 0.5, 2.0)
                                    .lose_messages(0.0, 0.5, 2.0));
  injector.attach(rt_b);
  const auto b = rt_b.run(wl_b);

  EXPECT_EQ(a.makespan, b.makespan);  // bitwise
  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.tasks_offloaded, b.tasks_offloaded);
  EXPECT_EQ(a.transfer_bytes, b.transfer_bytes);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.lewi_lends, b.lewi_lends);
  EXPECT_EQ(a.lewi_borrows, b.lewi_borrows);
  EXPECT_EQ(a.drom_moves, b.drom_moves);
  EXPECT_EQ(b.messages_lost, 0u);
  EXPECT_EQ(b.retransmissions, 0u);
  EXPECT_EQ(b.tasks_reexecuted, 0u);
  for (int n = 0; n < rt_a.topology().node_count(); ++n) {
    EXPECT_EQ(rt_a.recorder().node_busy(n).points(),
              rt_b.recorder().node_busy(n).points())
        << "node " << n << " busy trace diverged";
  }
}

// Satellite: a run is a pure function of RuntimeConfig::seed — two
// identical executions (including stochastic faults: message loss, jitter,
// a crash) produce identical results and identical traces.
TEST(Fault, SeededRunsAreDeterministic) {
  auto run_once = [](core::ClusterRuntime& rt) {
    apps::SyntheticWorkload wl(synth(4, 6, 120, 2.0));
    fault::FaultInjector injector(
        fault::FaultPlan()
            .lose_messages(0.10, 0.5, 2.5)
            .degrade_link(2.0, 0.5, 1e-5, 1.0, 3.0)
            .crash_worker(rt.topology().workers_of_apprank(0)[1], 1.5));
    injector.attach(rt);
    return rt.run(wl);
  };
  const core::RuntimeConfig cfg = fault_cluster(4, 8, 2);
  core::ClusterRuntime rt_a(cfg);
  core::ClusterRuntime rt_b(cfg);
  const auto a = run_once(rt_a);
  const auto b = run_once(rt_b);

  EXPECT_EQ(a.makespan, b.makespan);  // bitwise
  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted);
  EXPECT_GT(a.messages_lost, 0u);  // the loss window did bite
  EXPECT_EQ(rt_a.recorder().marks(), rt_b.recorder().marks());
  for (int n = 0; n < rt_a.topology().node_count(); ++n) {
    EXPECT_EQ(rt_a.recorder().node_busy(n).points(),
              rt_b.recorder().node_busy(n).points());
  }
}

// RecoverySeries::analyse on hand-built traces: reconvergence is measured
// from the injection instant, goodput loss against the pre-fault rate.
TEST(Recovery, AnalyseMeasuresReconvergenceAndGoodput) {
  trace::StepSeries a;
  trace::StepSeries b;
  a.set(0.0, 4.0);
  b.set(0.0, 4.0);
  b.set(5.0, 0.0);   // perturbation knocks node b idle...
  b.set(10.0, 4.0);  // ...for five seconds
  a.set(20.0, 0.0);
  b.set(20.0, 0.0);

  metrics::RecoverySeries series;
  series.record(5.0, "knock-out");
  const auto reports =
      series.analyse({&a, &b}, 0.0, 20.0, 30, 1.10, 2);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].label, "knock-out");
  EXPECT_NEAR(reports[0].reconverge_time, 5.0, 0.6);  // one bin of slack
  EXPECT_NEAR(reports[0].goodput_lost, 20.0, 1e-6);   // 4 cores x 5 s
}

}  // namespace
}  // namespace tlb
