// Fig 9: role of LeWI and DROM on MicroPP traces, four appranks on four
// nodes, offloading degree 2. Expected shape (paper §7.4):
//   - LeWI only: borrowed remote cores shorten the run to ~83% of the
//     baseline (borrowed-core use stays well under 100% - §5.5);
//   - DROM only: ownership converges to the steady imbalance, ~65%;
//   - LeWI + DROM: best of both (LeWI reacts immediately, DROM locks in
//     the steady state).
#include "apps/micropp/workload.hpp"
#include "bench/common.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/flame.hpp"
#include "obs/pop.hpp"
#include "trace/paraver.hpp"
#include "trace/recorder.hpp"

namespace {

tlb::apps::micropp::MicroPPConfig micropp4() {
  tlb::apps::micropp::MicroPPConfig cfg;
  cfg.appranks = 4;
  cfg.iterations = tlb::bench::smoke() ? 2 : 12;
  cfg.elements_per_rank = tlb::bench::smoke() ? 1024 : 8192;
  cfg.elements_per_task = 16;
  cfg.heavy_rank_fraction = 0.25;  // apprank 0 is the heavy one
  cfg.nonlinear_fraction_heavy = 0.45;
  cfg.nonlinear_fraction_light = 0.05;
  cfg.core_flops_rate = 5e7;
  return cfg;
}

struct Variant {
  const char* name;
  bool lewi;
  bool drom;
};

}  // namespace

int main() {
  using namespace tlb::bench;
  const std::vector<Variant> variants = {
      {"baseline", false, false},
      {"lewi-only", true, false},
      {"drom-only", false, true},
      {"lewi+drom", true, true},
  };
  std::printf("== Fig 9: MicroPP, 4 appranks on 4 nodes, degree 2 ==\n");
  JsonReport report("fig09", "Role of LeWI and DROM on MicroPP");
  report.config().set("nodes", 4).set("cores_per_node", 48).set("degree", 2);

  double baseline = 0.0;
  for (const auto& v : variants) {
    tlb::core::RuntimeConfig cfg;
    cfg.cluster = marenostrum4(4);
    cfg.appranks_per_node = 1;
    cfg.degree = 2;
    cfg.lewi = v.lewi;
    cfg.drom = v.drom;
    cfg.policy = v.drom ? tlb::core::PolicyKind::Global
                        : tlb::core::PolicyKind::None;
    cfg.obs.spans = true;  // pure recording — schedules stay bit-identical
    tlb::apps::micropp::MicroPPWorkload wl(micropp4());
    tlb::core::ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    if (baseline == 0.0) baseline = r.makespan;

    std::printf("\n-- %s: %.3f s (%.0f%% of baseline), offloaded %.1f%%, "
                "lends %llu borrows %llu drom-moves %llu\n",
                v.name, r.makespan, 100.0 * r.makespan / baseline,
                100.0 * r.offload_fraction(),
                static_cast<unsigned long long>(r.lewi_lends),
                static_cast<unsigned long long>(r.lewi_borrows),
                static_cast<unsigned long long>(r.drom_moves));
    const tlb::obs::PopReport pop = rt.pop();
    report.point(v.name)
        .set("makespan", r.makespan)
        .set("vs_baseline", r.makespan / baseline)
        .set("offload_fraction", r.offload_fraction())
        .set("lewi_lends", r.lewi_lends)
        .set("lewi_borrows", r.lewi_borrows)
        .set("drom_moves", r.drom_moves)
        .set("pop_parallel_efficiency", pop.parallel_efficiency)
        .set("pop_load_balance", pop.load_balance)
        .set("pop_communication_efficiency", pop.communication_efficiency)
        .set("pop_transfer_efficiency", pop.transfer_efficiency)
        .set_raw("metrics", rt.metrics().to_json());

    std::fputs(tlb::obs::render_pop(pop).c_str(), stdout);
    const tlb::obs::CriticalPath cp =
        tlb::obs::critical_path(rt.tasks(), *rt.spans());
    std::fputs(tlb::obs::render_critical_path(cp).c_str(), stdout);

    if (const char* dir = trace_output_dir()) {
      const std::string stem = std::string(dir) + "/fig09_" + v.name;
      write_text_file(stem + ".trace.json",
                      tlb::obs::chrome_trace_json(*rt.spans(), 4, 4));
      // Collapsed stacks: feed to flamegraph.pl or speedscope.app to see
      // where simulated time went (queue / transfer / exec per node).
      write_text_file(stem + ".flame.folded",
                      tlb::obs::collapsed_stacks_text(*rt.spans()));
      write_text_file(stem + ".prv",
                      tlb::trace::to_paraver(rt.recorder(), r.makespan));
      write_text_file(stem + ".row",
                      tlb::trace::paraver_row_labels(rt.recorder()));
      write_text_file(stem + ".pcf", tlb::trace::paraver_pcf());
    }

    const auto& rec = rt.recorder();
    std::printf("   busy cores per (node, apprank), peak=48:\n");
    std::vector<std::pair<std::string, const tlb::trace::StepSeries*>> rows;
    for (int n = 0; n < 4; ++n) {
      for (int a = 0; a < 4; ++a) {
        if (rec.busy(n, a).empty() && a != n) continue;  // skip silent rows
        rows.emplace_back("   n" + std::to_string(n) + " a" + std::to_string(a),
                          &rec.busy(n, a));
      }
    }
    std::fputs(tlb::trace::ascii_timeline(rows, 0, r.makespan, 72, 48.0).c_str(),
               stdout);
    std::printf("   owned cores per (node, apprank), peak=48:\n");
    rows.clear();
    for (int n = 0; n < 4; ++n) {
      for (int a = 0; a < 4; ++a) {
        if (rec.owned(n, a).empty()) continue;
        rows.emplace_back("   n" + std::to_string(n) + " a" + std::to_string(a),
                          &rec.owned(n, a));
      }
    }
    std::fputs(tlb::trace::ascii_timeline(rows, 0, r.makespan, 72, 48.0).c_str(),
               stdout);
  }
  return 0;
}
