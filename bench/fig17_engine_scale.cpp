// Fig 17 (extension): engine scale-out — events/sec, bounded telemetry
// memory, and the incremental fabric solver.
//
// The paper's figures stop at 32 nodes; this figure asks what the
// *simulator* can sustain when the modelled machine grows to 256 nodes
// and >1M tasks. Three arms:
//
//  - "telemetry": one mid-size machine run three ways — span telemetry
//    off, the in-memory obs::SpanCollector, and the tlb::stream spill
//    backend. The collector's resident set grows with total tasks; the
//    stream sink's with *in-flight* tasks (peak_open_spans), so its RSS
//    tracks the telemetry-off run while producing the same trace (the
//    equivalence is pinned bit-for-bit by tests/stream_test.cpp).
//  - "solver": two fabrics driven through an identical seeded
//    arrival/cancel sequence, full vs incremental max-min re-solve.
//    Rates are sampled mid-flight and compared exactly
//    (rates_exact_match) — the incremental solver is not an
//    approximation — and the wall-clock ratio is the solver speedup.
//  - "scale": nodes x tasks with the streaming backend and the
//    incremental solver on (the fig17 configuration): wall clock,
//    events/sec, peak RSS, spans spilled, and solver work counters.
//
// Baseline recorded for the header claim: the pre-PR engine (seed
// 89c9282: std::priority_queue event loop, full re-solve on every flow
// event, in-memory collector only) measured on the same host at the
// 64-node scale point sustains kSeedBaselineEventsPerSec below; every
// "scale" point reports vs_seed64 = its rate over that one 64-node
// number (so vs_seed64 at other node counts mixes scale effects with
// engine effects — only the 64-node row is apples-to-apples). With
// TLB_PROF=1 every scale point additionally reports solver_wall_share,
// alloc_bytes_per_task, and per-subsystem byte attribution from the
// src/prof self-profiler (windowed per point). Measured
// outcome on the reference host: the 64-node row is at parity (0.96x) —
// the max-min solve is >95% of wall time and the 4-spine fat-tree makes
// one giant flow<->link component, so the incremental decomposition
// cannot shrink the re-solve on this topology (see solver_flows_touched
// and EXPERIMENTS.md Fig 17). Simulated results are deterministic; only
// wall-clock columns vary between hosts.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <random>

#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "net/fabric.hpp"
#include "prof/prof.hpp"

namespace {

using namespace tlb;

constexpr int kCores = 8;
constexpr int kDegree = 4;
constexpr double kNicBandwidth = 2e8;             // 200 MB/s
constexpr std::uint64_t kPayload = 256u << 10;    // 256 KiB/task
constexpr int kLeafRadix = 16;
constexpr int kSpines = 4;

/// Pre-PR engine throughput at the 64-node scale point on the reference
/// host (see header). 0 means "not yet measured on this checkout".
constexpr double kSeedBaselineEventsPerSec = 4937.0;

std::string bench_dir() {
  const char* dir = std::getenv("TLB_BENCH_OUTPUT_DIR");
  return (dir != nullptr && dir[0] != '\0') ? std::string(dir) : std::string(".");
}

apps::SyntheticConfig workload_config(int nodes, int tasks_per_rank) {
  apps::SyntheticConfig cfg;
  cfg.appranks = nodes;
  // Many barrier-paced iterations of moderate task counts: the stream
  // sink's working set is the *in-flight* spans (one iteration's worth),
  // so total tasks grow 16x past resident telemetry memory.
  cfg.iterations = bench::smoke() ? 4 : 16;
  cfg.tasks_per_rank = tasks_per_rank;
  cfg.base_duration = 0.005;
  cfg.imbalance = 1.8;
  cfg.bytes_per_task = kPayload;
  return cfg;
}

enum class Telemetry { Off, Collector, Stream };

core::RuntimeConfig runtime_config(int nodes, Telemetry telemetry,
                                   bool incremental,
                                   const std::string& stream_path) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(nodes, kCores);
  cfg.cluster.link.bandwidth = kNicBandwidth;
  cfg.appranks_per_node = 1;
  cfg.degree = kDegree;
  cfg.policy = core::PolicyKind::Global;
  cfg.net.enabled = true;
  cfg.net.topology = net::TopologyKind::FatTree;
  cfg.net.leaf_radix = kLeafRadix;
  cfg.net.spines = kSpines;
  cfg.net.incremental = incremental;
  cfg.obs.spans = telemetry == Telemetry::Collector;
  cfg.obs.stream.enabled = telemetry == Telemetry::Stream;
  cfg.obs.stream.path = stream_path;
  cfg.prof.enabled = bench::prof_requested();
  // Smoke points fire only a few thousand events; the default 8192-event
  // cadence would leave the health-snapshot buffer empty.
  cfg.prof.snapshot_every_events = bench::smoke() ? 256 : 8192;
  return cfg;
}

std::uint64_t total_tasks(int nodes, int tasks_per_rank) {
  const apps::SyntheticConfig cfg = workload_config(nodes, tasks_per_rank);
  return static_cast<std::uint64_t>(cfg.appranks) *
         static_cast<std::uint64_t>(cfg.iterations) *
         static_cast<std::uint64_t>(cfg.tasks_per_rank);
}

struct RunSample {
  core::RunResult result;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double rss_mb = 0.0;       ///< VmRSS right after run() (runtime alive)
  double peak_rss_mb = 0.0;  ///< process high-water mark so far
  std::uint64_t spans_spilled = 0;
  std::uint64_t stream_bytes = 0;
  std::uint64_t peak_open_spans = 0;
  std::uint64_t solver_runs = 0;
  std::uint64_t solver_flows_touched = 0;
  std::uint64_t solver_links_touched = 0;
  // Filled only when TLB_PROF=1 (all zero otherwise).
  bool prof_on = false;
  double solver_wall_share = 0.0;       ///< total_ns("net.solve") / window wall
  double prof_unattributed_share = 0.0; ///< 1 - attributed/wall (acceptance <5%)
  double alloc_bytes_per_task = 0.0;    ///< sum of per-tag peaks / total tasks
  std::uint64_t prof_snapshots = 0;
  std::vector<prof::TagStats> alloc_peaks;  ///< per-tag, for the RSS breakdown
};

RunSample run_once(int nodes, int tasks_per_rank, Telemetry telemetry,
                   bool incremental, const std::string& stream_path) {
  // Each point gets its own profiler window so solver_wall_share and the
  // allocation peaks describe this run, not everything since main().
  // (The report-level "prof" block therefore covers the *last* point.)
  const bool prof_on = bench::prof_requested();
  if (prof_on) prof::Profiler::instance().reset();
  RunSample s;
  s.prof_on = prof_on;
  apps::SyntheticWorkload wl(workload_config(nodes, tasks_per_rank));
  core::ClusterRuntime rt(
      runtime_config(nodes, telemetry, incremental, stream_path));
  const auto t0 = std::chrono::steady_clock::now();
  s.result = rt.run(wl);
  s.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  s.events_per_sec =
      s.wall_s > 0.0
          ? static_cast<double>(s.result.events_fired) / s.wall_s
          : 0.0;
  s.rss_mb = bench::current_rss_mb();
  s.peak_rss_mb = bench::peak_rss_mb();
  if (const stream::StreamSink* sink = rt.stream_sink()) {
    s.spans_spilled = sink->spans_spilled();
    s.stream_bytes = sink->bytes_written();
    s.peak_open_spans = sink->peak_open_spans();
  }
  if (const net::Fabric* fabric = rt.fabric()) {
    s.solver_runs = fabric->solver_runs();
    s.solver_flows_touched = fabric->solver_flows_touched();
    s.solver_links_touched = fabric->solver_links_touched();
  }
  if (prof_on) {
    // Read before ~ClusterRuntime so the window excludes teardown (the
    // teardown frees are what balances the alloc counters, not a cost the
    // run pays); peaks are monotone within the window so reading them
    // with the runtime still alive is exact.
    auto& p = prof::Profiler::instance();
    const std::uint64_t wall_ns = p.wall_ns();
    if (wall_ns > 0) {
      s.solver_wall_share =
          static_cast<double>(p.total_ns("net.solve")) /
          static_cast<double>(wall_ns);
      const std::uint64_t attributed = p.attributed_ns();
      s.prof_unattributed_share =
          attributed < wall_ns
              ? 1.0 - static_cast<double>(attributed) /
                          static_cast<double>(wall_ns)
              : 0.0;
    }
    s.prof_snapshots = p.snapshots().size();
    s.alloc_peaks = p.alloc_stats();
    std::int64_t peak_sum = 0;
    for (const auto& t : s.alloc_peaks) peak_sum += t.peak_bytes;
    const std::uint64_t tasks = total_tasks(nodes, tasks_per_rank);
    if (tasks > 0) {
      s.alloc_bytes_per_task =
          static_cast<double>(peak_sum) / static_cast<double>(tasks);
    }
  }
  return s;
}

// --- telemetry arm ------------------------------------------------------------

void telemetry_arm(bench::JsonReport& report, int nodes, int tasks_per_rank) {
  using namespace tlb::bench;
  print_header("Fig 17a: telemetry backend at " + std::to_string(nodes) +
                   " nodes (" + std::to_string(total_tasks(nodes,
                                                           tasks_per_rank)) +
                   " tasks)",
               {"backend", "makespan[s]", "wall[s]", "kev/s", "rss[MB]",
                "spans", "open_peak"});
  // Collector last: ru_maxrss is a process-wide high-water mark, and the
  // collector's task-count-proportional footprint would otherwise mask
  // the off/stream readings.
  const struct {
    Telemetry telemetry;
    const char* name;
  } backends[] = {{Telemetry::Off, "off"},
                  {Telemetry::Stream, "stream"},
                  {Telemetry::Collector, "collector"}};
  for (const auto& b : backends) {
    const std::string spill = bench_dir() + "/fig17_telemetry.stream";
    const RunSample s =
        run_once(nodes, tasks_per_rank, b.telemetry, true, spill);
    const std::uint64_t spans = b.telemetry == Telemetry::Stream
                                    ? s.spans_spilled
                                    : (b.telemetry == Telemetry::Collector
                                           ? s.result.tasks_total
                                           : 0);
    print_cell(b.name);
    print_cell(s.result.makespan);
    print_cell(s.wall_s);
    print_cell(fmt(s.events_per_sec / 1e3, 2));
    print_cell(fmt(s.rss_mb, 1));
    print_cell(static_cast<int>(spans));
    print_cell(static_cast<int>(s.peak_open_spans));
    end_row();

    report.point("telemetry")
        .set("backend", b.name)
        .set("nodes", nodes)
        .set("tasks", total_tasks(nodes, tasks_per_rank))
        .set("makespan", s.result.makespan)
        .set("wall_s", s.wall_s)
        .set("events_fired", s.result.events_fired)
        .set("events_per_sec", s.events_per_sec)
        .set("rss_mb", s.rss_mb)
        .set("peak_rss_mb", s.peak_rss_mb)
        .set("spans_spilled", s.spans_spilled)
        .set("stream_bytes", s.stream_bytes)
        .set("peak_open_spans", s.peak_open_spans);
    if (b.telemetry == Telemetry::Stream) std::remove(spill.c_str());
  }
}

// --- solver arm ---------------------------------------------------------------

/// Drives one fabric through a fixed seeded flow schedule: `count` flow
/// arrivals 50us apart, random (src, dst, bytes), every 7th flow
/// cancelled mid-flight, rates of every live flow sampled at each 16th
/// arrival. Returns wall seconds; appends sampled rates to `rates`.
double drive_fabric(int nodes, int count, bool incremental,
                    std::vector<double>& rates, std::uint64_t& runs,
                    std::uint64_t& flows_touched) {
  sim::Engine engine;
  net::NetTopology topo = net::NetTopology::fat_tree(
      nodes, kLeafRadix, kSpines, kNicBandwidth, 4.0 * kNicBandwidth, 1e-6,
      5e-7);
  net::Fabric fabric(engine, std::move(topo));
  fabric.set_incremental(incremental);

  std::mt19937_64 rng(0xF16'17ull);
  int completed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<net::NodeId>(rng() % nodes);
    auto dst = static_cast<net::NodeId>(rng() % nodes);
    if (dst == src) dst = (dst + 1) % nodes;
    const std::uint64_t bytes = (64u << 10) + rng() % (1u << 20);
    const bool cancel_it = i % 7 == 3;
    const bool sample_it = i % 16 == 15;
    engine.at(5e-5 * i, [&, src, dst, bytes, cancel_it, sample_it] {
      const net::FlowId id =
          fabric.start_flow(src, dst, bytes, [&] { ++completed; });
      if (cancel_it) engine.after(2e-4, [&, id] { fabric.cancel(id); });
      if (sample_it) {
        engine.after(1e-4, [&, id] {
          // Flow ids are allocated in arrival order, identical across
          // both fabrics; sample a window around the newest flow.
          for (net::FlowId probe = id > 64 ? id - 64 : 1; probe <= id;
               ++probe) {
            rates.push_back(fabric.flow_rate(probe));
          }
        });
      }
    });
  }
  engine.run();
  runs = fabric.solver_runs();
  flows_touched = fabric.solver_flows_touched();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void solver_arm(bench::JsonReport& report, int nodes, int flow_count) {
  using namespace tlb::bench;
  print_header("Fig 17b: max-min re-solve, full vs incremental (" +
                   std::to_string(nodes) + " nodes, " +
                   std::to_string(flow_count) + " flows)",
               {"solver", "wall[s]", "solves", "flows_touched", "speedup",
                "rates_match"});

  std::vector<double> full_rates;
  std::vector<double> incr_rates;
  std::uint64_t full_runs = 0, full_touched = 0;
  std::uint64_t incr_runs = 0, incr_touched = 0;
  const double full_wall =
      drive_fabric(nodes, flow_count, false, full_rates, full_runs,
                   full_touched);
  const double incr_wall =
      drive_fabric(nodes, flow_count, true, incr_rates, incr_runs,
                   incr_touched);
  const bool exact = full_rates == incr_rates;  // bitwise, not approximate
  const double speedup = incr_wall > 0.0 ? full_wall / incr_wall : 0.0;

  print_cell("full");
  print_cell(full_wall);
  print_cell(static_cast<int>(full_runs));
  print_cell(static_cast<int>(full_touched));
  print_cell(fmt(1.0, 2));
  print_cell("-");
  end_row();
  print_cell("incremental");
  print_cell(incr_wall);
  print_cell(static_cast<int>(incr_runs));
  print_cell(static_cast<int>(incr_touched));
  print_cell(fmt(speedup, 2));
  print_cell(exact ? "exact" : "MISMATCH");
  end_row();

  report.point("solver")
      .set("nodes", nodes)
      .set("flows", flow_count)
      .set("full_wall_s", full_wall)
      .set("incremental_wall_s", incr_wall)
      .set("solver_speedup", speedup)
      .set("full_flows_touched", full_touched)
      .set("incremental_flows_touched", incr_touched)
      .set("rates_sampled", static_cast<std::uint64_t>(full_rates.size()))
      .set("solver_rates_exact_match", exact);
}

// --- scale arm ----------------------------------------------------------------

void scale_arm(bench::JsonReport& report, const std::vector<int>& node_counts,
               int tasks_per_rank) {
  using namespace tlb::bench;
  print_header("Fig 17c: engine scale (stream telemetry + incremental solver)",
               {"nodes", "tasks", "makespan[s]", "wall[s]", "kev/s",
                "peak_rss[MB]", "spans", "vs_seed64"});
  for (const int nodes : node_counts) {
    const std::string spill =
        bench_dir() + "/fig17_scale_n" + std::to_string(nodes) + ".stream";
    const RunSample s =
        run_once(nodes, tasks_per_rank, Telemetry::Stream, true, spill);
    const double vs_seed = kSeedBaselineEventsPerSec > 0.0
                               ? s.events_per_sec / kSeedBaselineEventsPerSec
                               : 0.0;

    print_cell(nodes);
    print_cell(static_cast<int>(total_tasks(nodes, tasks_per_rank)));
    print_cell(s.result.makespan);
    print_cell(s.wall_s);
    print_cell(fmt(s.events_per_sec / 1e3, 2));
    print_cell(fmt(s.peak_rss_mb, 1));
    print_cell(static_cast<int>(s.spans_spilled));
    print_cell(fmt(vs_seed, 2));
    end_row();

    bench::JsonObject& pt = report.point("scale");
    pt.set("nodes", nodes)
        .set("tasks", total_tasks(nodes, tasks_per_rank))
        .set("makespan", s.result.makespan)
        .set("wall_s", s.wall_s)
        .set("events_fired", s.result.events_fired)
        .set("events_per_sec", s.events_per_sec)
        .set("rss_mb", s.rss_mb)
        .set("peak_rss_mb", s.peak_rss_mb)
        .set("spans_spilled", s.spans_spilled)
        .set("stream_bytes", s.stream_bytes)
        .set("peak_open_spans", s.peak_open_spans)
        .set("solver_runs", s.solver_runs)
        .set("solver_flows_touched", s.solver_flows_touched)
        .set("solver_links_touched", s.solver_links_touched)
        .set("events_per_sec_vs_seed", vs_seed);
    if (s.prof_on) {
      // Direction-aware trend metrics (tools/bench_trend.py: up is bad)
      // plus the per-subsystem RSS attribution for EXPERIMENTS.md.
      pt.set("solver_wall_share", s.solver_wall_share)
          .set("alloc_bytes_per_task", s.alloc_bytes_per_task)
          .set("prof_unattributed_share", s.prof_unattributed_share)
          .set("prof_snapshots", s.prof_snapshots);
      const auto tasks =
          static_cast<double>(total_tasks(nodes, tasks_per_rank));
      for (const auto& t : s.alloc_peaks) {
        std::string key = std::string("alloc_") + t.tag + "_bytes_per_task";
        for (char& c : key) {
          if (c == '.') c = '_';
        }
        pt.set(key, tasks > 0.0
                        ? static_cast<double>(t.peak_bytes) / tasks
                        : 0.0);
      }
    }
    std::remove(spill.c_str());
  }
}

}  // namespace

int main() {
  const bool smoke = tlb::bench::smoke();
  std::printf(
      "== Fig 17: engine scale-out (stream telemetry, incremental solver) ==\n"
      "(synthetic, %d cores/node, degree %d, %d KiB/task, fat-tree\n"
      " %d-leaf/%d-spine, %.0f MB/s NICs; seed baseline %.0f events/s at\n"
      " the 64-node point — see header comment)\n",
      kCores, kDegree, static_cast<int>(kPayload >> 10), kLeafRadix, kSpines,
      kNicBandwidth / 1e6, kSeedBaselineEventsPerSec);

  tlb::bench::JsonReport report("fig17",
                                "Engine scale-out: events/sec, bounded "
                                "telemetry memory, incremental solver");
  report.config()
      .set("cores_per_node", kCores)
      .set("degree", kDegree)
      .set("payload_bytes", kPayload)
      .set("nic_bandwidth", kNicBandwidth)
      .set("leaf_radix", kLeafRadix)
      .set("spines", kSpines)
      .set("seed_baseline_events_per_sec", kSeedBaselineEventsPerSec)
      .set("seed_baseline_commit", "89c9282");

  const int tasks_per_rank = smoke ? 16 : 256;
  const int telemetry_nodes = smoke ? 8 : 64;
  const std::vector<int> scale_nodes =
      smoke ? std::vector<int>{4, 8} : std::vector<int>{16, 64, 256};

  telemetry_arm(report, telemetry_nodes, tasks_per_rank);
  solver_arm(report, smoke ? 16 : 64, smoke ? 512 : 4096);
  scale_arm(report, scale_nodes, tasks_per_rank);
  return 0;
}
