// Fig 6(a,b): Alya MicroPP weak scaling with the GLOBAL allocation policy
// on MareNostrum-4-like nodes (48 cores). Series: no-DLB baseline,
// single-node DLB (degree 1), and offloading degrees 2/3/4/8, plus the
// perfect-balance bound. Expected shape (paper §7.1): degree >= 3 tracks
// the perfect bound closely (47-49% below DLB at 4-32 nodes); degree 2
// degrades as node count grows (graph connectivity); degree 8 starts to
// cost (helper-core floor).
#include "bench/micropp_figure.hpp"

int main() {
  using namespace tlb::bench;
  run_micropp_weak_scaling(
      tlb::core::PolicyKind::Global, /*appranks_per_node=*/1,
      {2, 4, 8, 16, 32, 64},
      "Fig 6(a): MicroPP, global policy, 1 apprank/node [exec time, s]",
      "fig06a");
  run_micropp_weak_scaling(
      tlb::core::PolicyKind::Global, /*appranks_per_node=*/2,
      {2, 4, 8, 16, 32, 64},
      "Fig 6(b): MicroPP, global policy, 2 appranks/node [exec time, s]",
      "fig06b");
  return 0;
}
