// Fig 5: coarse-grained balancing, local convergence vs global solver.
// Two appranks on two nodes; the first half of the run is fully
// unbalanced (all work on apprank 0), the second half is balanced.
// Expected shape (paper §5.4): both policies spread the unbalanced phase
// across both nodes, but in the balanced phase the LOCAL policy converges
// to mixed core ownership and both appranks keep executing tasks on both
// nodes (unnecessary offloading), while the GLOBAL policy returns
// ownership home and offloading stops.
#include "bench/common.hpp"
#include "trace/recorder.hpp"

namespace {

class TwoPhaseWorkload final : public tlb::core::Workload {
 public:
  int iteration_count() const override { return tlb::bench::smoke() ? 6 : 36; }
  std::vector<tlb::core::TaskSpec> make_tasks(int apprank,
                                              int iteration) override {
    const bool unbalanced = iteration < iteration_count() / 3;
    const int scale = tlb::bench::smoke() ? 10 : 1;
    const int full = unbalanced ? (apprank == 0 ? 600 : 8) : 300;
    const int tasks = full / scale > 0 ? full / scale : 1;
    std::vector<tlb::core::TaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(tasks));
    for (int i = 0; i < tasks; ++i) {
      // Pure-compute tasks, like the paper's synthetic benchmark: no data
      // regions, so scheduling locality defaults to the home node and the
      // policies' ownership decisions are the only force at play.
      tlb::core::TaskSpec s;
      s.work = 0.05;
      specs.push_back(std::move(s));
    }
    return specs;
  }
};

void run_policy(tlb::core::PolicyKind kind, const char* name,
                tlb::bench::JsonReport& report) {
  using namespace tlb::bench;
  TwoPhaseWorkload wl;
  tlb::core::RuntimeConfig cfg;
  cfg.cluster = tlb::sim::ClusterSpec::homogeneous(2, 48);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = kind;
  tlb::core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  const auto& rec = rt.recorder();

  // Phase boundary: end of the unbalanced first third.
  double mid = 0.0;
  for (int i = 0; i < wl.iteration_count() / 3 &&
                  i < static_cast<int>(r.iteration_times.size());
       ++i) {
    mid += r.iteration_times[static_cast<std::size_t>(i)];
  }
  // Busy cores of each apprank on the REMOTE node, per phase: the
  // signature quantity of Fig 5 (remote execution = offloading).
  const double remote_phase1 = rec.busy(1, 0).average(0, mid) +
                               rec.busy(0, 1).average(0, mid);
  const double remote_phase2 = rec.busy(1, 0).average(mid, r.makespan) +
                               rec.busy(0, 1).average(mid, r.makespan);

  std::printf("\n-- %s policy: makespan %.3f s, offloaded work %.1f%%\n", name,
              r.makespan, 100.0 * r.offload_fraction());
  std::printf("   remote busy cores: %.2f (unbalanced phase)  %.2f (balanced phase)\n",
              remote_phase1, remote_phase2);
  std::printf("   final ownership: apprank0 @node1 = %.0f cores, apprank1 @node0 = %.0f cores\n",
              rec.owned(1, 0).value_at(r.makespan),
              rec.owned(0, 1).value_at(r.makespan));

  report.point(name)
      .set("makespan", r.makespan)
      .set("offload_fraction", r.offload_fraction())
      .set("remote_busy_unbalanced", remote_phase1)
      .set("remote_busy_balanced", remote_phase2)
      .set("final_owned_a0_n1", rec.owned(1, 0).value_at(r.makespan))
      .set("final_owned_a1_n0", rec.owned(0, 1).value_at(r.makespan));

  std::printf("   busy-core traces (rows: node x apprank, full run, peak=48):\n");
  std::vector<std::pair<std::string, const tlb::trace::StepSeries*>> rows;
  for (int n = 0; n < 2; ++n) {
    for (int a = 0; a < 2; ++a) {
      rows.emplace_back("   node" + std::to_string(n) + " apprank" +
                            std::to_string(a),
                        &rec.busy(n, a));
    }
  }
  std::fputs(tlb::trace::ascii_timeline(rows, 0, r.makespan, 72, 48.0).c_str(),
             stdout);
}

}  // namespace

int main() {
  std::printf("== Fig 5: coarse-grained balancing, 2 appranks on 2 nodes ==\n"
              "(first third unbalanced: all work on apprank 0; rest balanced)\n");
  tlb::bench::JsonReport report(
      "fig05", "Coarse-grained balancing: local convergence vs global solver");
  report.config().set("nodes", 2).set("cores_per_node", 48).set("degree", 2);
  run_policy(tlb::core::PolicyKind::Local, "local convergence", report);
  run_policy(tlb::core::PolicyKind::Global, "global solver", report);
  return 0;
}
