// Fig 13 (extension): offloading degree vs interconnect congestion.
//
// The paper's analytic cost model prices every transfer as if it had the
// wire to itself, so raising the offloading degree is free on the network
// side. With the contention-aware fabric (RuntimeConfig::net) enabled the
// trade-off becomes visible: more helpers means more concurrent payload
// flows crammed through the shared leaf uplinks of an oversubscribed
// fat-tree, so flow completion times stretch and the uplinks saturate.
//
// Sweep: offloading degree x payload-per-task on the synthetic benchmark
// (16 nodes x 16 cores, imbalance 2.0, global policy) over a 4:1
// oversubscribed two-level fat-tree (4 nodes per leaf, one spine, uplink
// bandwidth == one NIC). Per combination we run the same configuration
// twice — analytic model and fabric — and report:
//   - makespan under both models and the contention penalty between them;
//   - flow-completion-time p50/p99 (the congestion tail);
//   - peak utilization over the leaf uplinks;
//   - bytes moved and the offloaded work fraction.
//
// Expected shape: at small payloads the fabric is invisible (penalty ~0,
// p99 ~ p50) for every degree; as payload grows the penalty and the FCT
// tail rise with the degree, the uplinks pin at 1.0, and the marginal
// benefit of another helper shrinks — degree 4+ buys little balance but
// pays real congestion. The numbers are deterministic (fixed seed, no
// RNG in the fabric).
#include <cinttypes>

#include "apps/synthetic.hpp"
#include "bench/common.hpp"

namespace {

using namespace tlb;

constexpr int kNodes = 16;
constexpr int kCores = 16;
// A deliberately narrow fabric (200 MB/s NICs) so payload streaming is
// commensurable with the ~20 ms tasks; the shape, not the absolute
// bandwidth, is the point.
constexpr double kNicBandwidth = 2e8;

apps::SyntheticConfig workload_config(std::uint64_t payload) {
  apps::SyntheticConfig cfg;
  cfg.appranks = kNodes;
  // Smoke keeps the full per-iteration volume (a shorter run never crosses
  // the solver period, so no offloading — and thus no flows — would occur)
  // and trims iterations instead.
  cfg.iterations = bench::smoke() ? 2 : 4;
  cfg.tasks_per_rank = 96;
  cfg.base_duration = 0.020;
  cfg.imbalance = 2.0;
  cfg.bytes_per_task = payload;
  return cfg;
}

core::RuntimeConfig runtime_config(int degree, bool fabric) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(kNodes, kCores);
  cfg.cluster.link.bandwidth = kNicBandwidth;
  cfg.appranks_per_node = 1;
  cfg.degree = degree;
  cfg.policy = core::PolicyKind::Global;
  cfg.net.enabled = fabric;
  cfg.net.topology = net::TopologyKind::FatTree;
  cfg.net.leaf_radix = 4;
  cfg.net.spines = 1;
  // Uplink == one NIC while each leaf aggregates four: 4:1 oversubscribed.
  cfg.net.uplink_bandwidth = kNicBandwidth;
  return cfg;
}

std::string payload_name(std::uint64_t payload) {
  if (payload >= (1u << 20)) {
    return std::to_string(payload >> 20) + " MiB";
  }
  return std::to_string(payload >> 10) + " KiB";
}

void sweep_payload(std::uint64_t payload, const std::vector<int>& degrees,
                   bench::JsonReport& report) {
  using namespace tlb::bench;
  print_header("Fig 13: degree vs congestion, payload " + payload_name(payload),
               {"degree", "analytic[s]", "fabric[s]", "penalty%", "fct_p50[ms]",
                "fct_p99[ms]", "uplink_peak", "moved[MiB]", "offload%"});

  for (int degree : degrees) {
    apps::SyntheticWorkload wl_a(workload_config(payload));
    const auto analytic =
        core::ClusterRuntime(runtime_config(degree, false)).run(wl_a);

    apps::SyntheticWorkload wl_f(workload_config(payload));
    core::ClusterRuntime rt(runtime_config(degree, true));
    const auto r = rt.run(wl_f);

    const net::Fabric* fabric = rt.fabric();
    double uplink_peak = 0.0;
    for (net::LinkId l : fabric->topology().leaf_uplinks()) {
      if (fabric->peak_utilization(l) > uplink_peak) {
        uplink_peak = fabric->peak_utilization(l);
      }
    }
    const double p50 = fabric->fct_quantile(0.5);
    const double p99 = fabric->fct_quantile(0.99);
    const double penalty = 100.0 * (r.makespan / analytic.makespan - 1.0);
    const double moved_mib =
        static_cast<double>(r.transfer_bytes) / (1024.0 * 1024.0);

    print_cell(degree);
    print_cell(analytic.makespan);
    print_cell(r.makespan);
    print_cell(fmt(penalty, 1));
    print_cell(1e3 * p50);
    print_cell(1e3 * p99);
    print_cell(fmt(uplink_peak, 2));
    print_cell(fmt(moved_mib, 1));
    print_cell(fmt(100.0 * r.offload_fraction(), 1));
    end_row();

    report.point("payload " + payload_name(payload))
        .set("degree", degree)
        .set("payload_bytes", payload)
        .set("makespan_analytic", analytic.makespan)
        .set("makespan_fabric", r.makespan)
        .set("contention_penalty_pct", penalty)
        .set("fct_p50_s", p50)
        .set("fct_p99_s", p99)
        .set("uplink_peak_utilization", uplink_peak)
        .set("transfer_bytes", r.transfer_bytes)
        .set("flows_completed", fabric->flows_completed())
        .set("offload_fraction", r.offload_fraction());
  }
}

}  // namespace

int main() {
  std::printf(
      "== Fig 13: offloading degree x interconnect congestion ==\n"
      "(synthetic, %d nodes x %d cores, imbalance 2.0, global policy;\n"
      " 4:1 oversubscribed fat-tree, %.0f MB/s NICs; fabric = max-min fair\n"
      " shared-link model, analytic = uncontended latency+size/bandwidth)\n",
      kNodes, kCores, kNicBandwidth / 1e6);

  tlb::bench::JsonReport report(
      "fig13", "Offloading degree vs interconnect congestion");
  report.config()
      .set("nodes", kNodes)
      .set("cores_per_node", kCores)
      .set("nic_bandwidth", kNicBandwidth)
      .set("uplink_bandwidth", kNicBandwidth)
      .set("leaf_radix", 4)
      .set("spines", 1)
      .set("imbalance", 2.0)
      .set("policy", "global");

  const std::vector<int> degrees =
      tlb::bench::smoke() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  std::vector<std::uint64_t> payloads = {256u << 10, 1u << 20, 4u << 20};
  if (tlb::bench::smoke()) payloads = {256u << 10};
  for (std::uint64_t payload : payloads) {
    sweep_payload(payload, degrees, report);
  }
  return 0;
}
