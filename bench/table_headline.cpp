// Headline numbers of the paper (abstract / §7.1 / §7.3), paper value vs
// this reproduction:
//   1. MicroPP on 32 nodes: 46-47% reduction in time-to-solution vs
//      single-node DLB (global policy, degree 4), within ~7% of perfect.
//   2. MicroPP on 4 nodes: 49% reduction vs DLB.
//   3. n-body on 16 nodes with one slow node: DLB alone ~16% better than
//      baseline; offloading (degree 3) a further ~20%.
//   4. Synthetic on 8 nodes: within 10% of perfect balance for any
//      imbalance up to 2.0 (degree 4).
#include "apps/micropp/workload.hpp"
#include "apps/nbody/workload.hpp"
#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "bench/micropp_figure.hpp"

namespace {

using namespace tlb::bench;

tlb::core::RunResult run_micropp(int nodes, int per_node, const Series& s) {
  auto cfg = make_config(marenostrum4(nodes), per_node, s);
  tlb::apps::micropp::MicroPPWorkload wl(micropp_config(nodes * per_node));
  tlb::core::ClusterRuntime rt(cfg);
  return rt.run(wl);
}

void micropp_headline(int nodes) {
  const Series dlb{"dlb", 1, true, true, tlb::core::PolicyKind::Global};
  const Series deg4{"deg4", 4, true, true, tlb::core::PolicyKind::Global};
  const auto r_dlb = run_micropp(nodes, 2, dlb);
  const auto r_off = run_micropp(nodes, 2, deg4);
  const double reduction = 1.0 - r_off.makespan / r_dlb.makespan;
  const double vs_perfect = r_off.makespan / r_off.perfect_time - 1.0;
  std::printf("MicroPP %2d nodes (2 appranks/node): reduction vs DLB %.0f%% "
              "(paper: %s), above perfect %.0f%% (paper: ~7%% at 32 nodes)\n",
              nodes, 100 * reduction, nodes >= 32 ? "46-47%" : "49%",
              100 * vs_perfect);
}

void nbody_headline() {
  tlb::apps::nbody::NBodyConfig ncfg;
  ncfg.appranks = 32;
  ncfg.iterations = 12;
  ncfg.bodies = 8192;
  ncfg.blocks_per_rank = 48;
  ncfg.orb_chunk = 128;
  ncfg.dt = 5e-3;
  ncfg.cluster_fraction = 0.4;
  ncfg.seconds_per_interaction = 7.5e-5;

  auto run = [&](const Series& s) {
    auto cfg = make_config(nord3(16, true), 2, s);
    tlb::apps::nbody::NBodyWorkload wl(ncfg);
    tlb::core::ClusterRuntime rt(cfg);
    return rt.run(wl);
  };
  const auto base = run({"base", 1, false, false, tlb::core::PolicyKind::None});
  const auto dlb = run({"dlb", 1, true, true, tlb::core::PolicyKind::Global});
  const auto deg3 = run({"deg3", 3, true, true, tlb::core::PolicyKind::Global});
  std::printf("n-body 16 nodes, 1 slow node: DLB %.0f%% below baseline "
              "(paper: 16%%), degree-3 offloading a further %.0f%% "
              "(paper: 20%%)\n",
              100 * (1 - dlb.makespan / base.makespan),
              100 * (dlb.makespan - deg3.makespan) / base.makespan);
}

void synthetic_headline() {
  double worst = 0.0;
  for (double imb : {1.0, 1.5, 2.0}) {
    tlb::apps::SyntheticConfig scfg;
    scfg.appranks = 8;
    scfg.iterations = 6;
    scfg.tasks_per_rank = 320;
    scfg.imbalance = imb;
    tlb::core::RuntimeConfig cfg;
    cfg.cluster = tlb::sim::ClusterSpec::homogeneous(8, 16);
    cfg.appranks_per_node = 1;
    cfg.degree = 4;
    tlb::apps::SyntheticWorkload wl(scfg);
    tlb::core::ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    worst = std::max(worst, r.makespan / r.perfect_time - 1.0);
  }
  std::printf("synthetic 8 nodes, imbalance <= 2.0, degree 4: worst gap to "
              "perfect %.0f%% (paper: within 10%%)\n",
              100 * worst);
}

}  // namespace

int main() {
  std::printf("== Headline results: paper vs reproduction ==\n");
  micropp_headline(4);
  micropp_headline(32);
  nbody_headline();
  synthetic_headline();
  return 0;
}
