// Fig 11: convergence of the node-level imbalance
// (max node busy / average node busy) over time for the synthetic
// benchmark, comparing local vs global policies with and without LeWI,
// plus LeWI-only. Expected shape (paper §7.6):
//   - DROM (either policy) drives the node imbalance close to 1.0;
//   - LeWI-only fluctuates around ~1.2;
//   - the local policy converges faster than the global one (which only
//     updates every 2 s), and LeWI accelerates local convergence.
#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "metrics/imbalance.hpp"

namespace {

struct Variant {
  const char* name;
  tlb::core::PolicyKind policy;
  bool lewi;
  bool drom;
};

void scenario(int nodes, double imbalance, tlb::bench::JsonReport& report) {
  using namespace tlb::bench;
  const std::vector<Variant> variants = {
      {"local+lewi", tlb::core::PolicyKind::Local, true, true},
      {"local", tlb::core::PolicyKind::Local, false, true},
      {"global+lewi", tlb::core::PolicyKind::Global, true, true},
      {"global", tlb::core::PolicyKind::Global, false, true},
      {"lewi-only", tlb::core::PolicyKind::None, true, false},
  };

  tlb::apps::SyntheticConfig scfg;
  scfg.appranks = nodes;
  scfg.iterations = smoke() ? 3 : 8;
  scfg.tasks_per_rank = smoke() ? 96 : 480;
  scfg.imbalance = imbalance;

  const int bins = 48;
  std::printf("\n== Fig 11: node imbalance over time, %d nodes, imbalance %.1f ==\n",
              nodes, imbalance);

  std::vector<std::vector<double>> rows;
  std::vector<double> ends;
  for (const auto& v : variants) {
    tlb::core::RuntimeConfig cfg;
    cfg.cluster = tlb::sim::ClusterSpec::homogeneous(nodes, 16);
    cfg.appranks_per_node = 1;
    cfg.degree = std::min(nodes, 4);
    cfg.policy = v.policy;
    cfg.lewi = v.lewi;
    cfg.drom = v.drom;
    tlb::apps::SyntheticWorkload wl(scfg);
    tlb::core::ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    std::vector<const tlb::trace::StepSeries*> node_busy;
    for (int n = 0; n < nodes; ++n) {
      node_busy.push_back(&rt.recorder().node_busy(n));
    }
    rows.push_back(tlb::metrics::node_imbalance_series(node_busy, 0.0,
                                                       r.makespan, bins));
    ends.push_back(r.makespan);
  }

  // Time series table: one column per variant (times normalised per run).
  std::printf("%8s", "t/T");
  for (const auto& v : variants) std::printf("%14s", v.name);
  std::printf("\n");
  for (int b = 0; b < bins; ++b) {
    std::printf("%8.3f", (b + 0.5) / bins);
    for (const auto& row : rows) std::printf("%14.3f", row[static_cast<std::size_t>(b)]);
    std::printf("\n");
  }

  std::printf("%8s", "conv");
  std::vector<double> convs;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    // Drop the final two bins: the end-of-run drain empties nodes at
    // slightly different instants, which reads as spurious imbalance.
    std::vector<double> body(rows[i].begin(), rows[i].end() - 2);
    const double t = tlb::metrics::convergence_time(
        body, 0.0, ends[i] * (bins - 2) / bins,
        /*threshold=*/1.15,
        /*hold=*/4);
    convs.push_back(t);
    std::printf("%14s", t < 0 ? "never" : fmt(t, 2).c_str());
  }
  std::printf("   <- first time node imbalance stays <= 1.15\n");
  std::printf("%8s", "tail");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    // Average imbalance over the last third of the run.
    double avg = 0.0;
    for (int b = 2 * bins / 3; b < bins; ++b) avg += rows[i][static_cast<std::size_t>(b)];
    std::printf("%14.3f", avg / (bins / 3));
    auto& pt = report.point(variants[i].name)
                   .set("nodes", nodes)
                   .set("imbalance", imbalance)
                   .set("makespan", ends[i])
                   .set("reconverged", convs[i] >= 0.0)
                   .set("steady_state_imbalance", avg / (bins / 3));
    if (convs[i] >= 0.0) pt.set("convergence_s", convs[i]);
  }
  std::printf("   <- steady-state node imbalance\n");
}

}  // namespace

int main() {
  tlb::bench::JsonReport report(
      "fig11", "Convergence of the node-level imbalance over time");
  report.config().set("cores_per_node", 16).set("threshold", 1.15);
  scenario(2, 2.0, report);
  if (!tlb::bench::smoke()) scenario(4, 4.0, report);
  return 0;
}
