// Shared driver for the MicroPP weak-scaling figures (Fig 6(a,b) global
// policy, Fig 7 local policy).
#pragma once

#include "apps/micropp/workload.hpp"
#include "bench/common.hpp"

namespace tlb::bench {

/// Paper-like MicroPP configuration, scaled so a full weak-scaling sweep
/// simulates in seconds: 128 tasks per rank (vs ~100 per core in the
/// paper), ~2x load ratio between the non-linear-heavy ranks and the rest.
inline apps::micropp::MicroPPConfig micropp_config(int appranks) {
  apps::micropp::MicroPPConfig cfg;
  cfg.appranks = appranks;
  cfg.iterations = smoke() ? 2 : 16;
  cfg.elements_per_rank = smoke() ? 1024 : 8192;
  cfg.elements_per_task = 16;
  cfg.heavy_rank_fraction = 0.25;
  cfg.nonlinear_fraction_heavy = 0.55;
  cfg.nonlinear_fraction_light = 0.05;
  cfg.core_flops_rate = 5e7;  // scaled-down cores => seconds-long iterations
  return cfg;
}

/// Runs the weak-scaling sweep for one apprank placement; prints a table
/// (rows = node counts, columns = series + perfect bound) and writes
/// BENCH_<figure>.json. In smoke mode the sweep is cut to its two
/// smallest node counts.
inline void run_micropp_weak_scaling(core::PolicyKind policy,
                                     int appranks_per_node,
                                     std::vector<int> node_counts,
                                     const char* title, const char* figure) {
  if (smoke() && node_counts.size() > 2) node_counts.resize(2);
  JsonReport report(figure, title);
  report.config()
      .set("policy", core::to_string(policy))
      .set("appranks_per_node", appranks_per_node)
      .set("cores_per_node", 48);

  const auto series = paper_series(policy, {2, 3, 4, 8});
  std::vector<std::string> cols = {"nodes"};
  for (const auto& s : series) cols.push_back(s.name);
  cols.push_back("perfect");
  print_header(title, cols);

  for (int nodes : node_counts) {
    print_cell(nodes);
    double perfect = 0.0;
    for (const auto& s : series) {
      const auto cluster = marenostrum4(nodes);
      if (!feasible(cluster, appranks_per_node, s)) {
        print_cell(std::string("-"));
        continue;
      }
      auto cfg = make_config(cluster, appranks_per_node, s);
      cfg.solver_latency =
          policy == core::PolicyKind::Global
              ? 0.057 * (nodes / 32.0) * (nodes / 32.0)  // paper §5.4.2
              : 0.0;
      apps::micropp::MicroPPWorkload wl(
          micropp_config(nodes * appranks_per_node));
      core::ClusterRuntime rt(cfg);
      const auto r = rt.run(wl);
      print_cell(r.makespan);
      perfect = r.perfect_time;
      report.point(s.name)
          .set("nodes", nodes)
          .set("makespan", r.makespan)
          .set("perfect", r.perfect_time)
          .set("offload_fraction", r.offload_fraction());
    }
    print_cell(perfect);
    end_row();
  }
}

}  // namespace tlb::bench
