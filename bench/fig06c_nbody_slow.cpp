// Fig 6(c): n-body (Barnes-Hut + ORB) on Nord3-like nodes (16 cores),
// 2 appranks per node, with ONE SLOW NODE (1.8 GHz vs 3.0 GHz => speed
// factor 0.6). ORB equalises *predicted* interaction counts and is blind
// to node speed, so the two ranks homed on the slow node stretch every
// iteration. Expected shape (paper §7.1): single-node DLB helps a little
// (it can only average the slow node's two ranks); offloading with degree
// 3 recovers most of the loss (paper: DLB 16% + a further 20%).
#include "apps/nbody/workload.hpp"
#include "bench/common.hpp"

namespace {

tlb::apps::nbody::NBodyConfig nbody_config(int appranks) {
  tlb::apps::nbody::NBodyConfig cfg;
  cfg.appranks = appranks;
  cfg.iterations = tlb::bench::smoke() ? 2 : 12;
  cfg.bodies = tlb::bench::smoke() ? 2048 : 8192;
  cfg.blocks_per_rank = 48;
  cfg.theta = 0.5;
  cfg.dt = 5e-3;                      // noticeable drift between ORB steps
  cfg.cluster_fraction = 0.4;
  cfg.seconds_per_interaction = 7.5e-5;  // scaled to ~3 s iterations
  cfg.orb_chunk = 128;  // bucket-granular ORB: the residual DLB picks up
  return cfg;
}

}  // namespace

int main() {
  using namespace tlb::bench;
  const int nodes = 16;
  const int per_node = 2;
  // Nord3 has 16 cores/node: with 2 appranks per node the degree must be
  // at most 4 so every worker still gets a core (paper §7.1 note).
  const auto series = paper_series(tlb::core::PolicyKind::Global, {2, 3, 4});

  std::vector<std::string> cols = {"series", "time[s]", "vs baseline",
                                   "offloaded", "perfect"};
  print_header(
      "Fig 6(c): n-body on 16 Nord3 nodes, one slow node, 2 appranks/node",
      cols);

  JsonReport report(
      "fig06c", "N-body on 16 Nord3 nodes, one slow node, 2 appranks/node");
  report.config()
      .set("nodes", nodes)
      .set("cores_per_node", 16)
      .set("appranks_per_node", per_node)
      .set("slow_node_speed", 0.6);

  double baseline = 0.0;
  for (const auto& s : series) {
    const auto cluster = nord3(nodes, /*one_slow_node=*/true);
    if (!feasible(cluster, per_node, s)) continue;
    auto cfg = make_config(cluster, per_node, s);
    tlb::apps::nbody::NBodyWorkload wl(nbody_config(nodes * per_node));
    tlb::core::ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    if (s.name == "baseline") baseline = r.makespan;
    print_cell(s.name);
    print_cell(r.makespan);
    print_cell(baseline > 0.0 ? fmt(1.0 - r.makespan / baseline, 3)
                              : std::string("-"));
    print_cell(fmt(r.offload_fraction(), 3));
    print_cell(r.perfect_time);
    end_row();
    report.point(s.name)
        .set("makespan", r.makespan)
        .set("perfect", r.perfect_time)
        .set("offload_fraction", r.offload_fraction());
  }
  return 0;
}
