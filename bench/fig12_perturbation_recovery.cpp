// Fig 12 (extension): recovery from mid-run perturbations.
//
// Sweeps detector {oracle, phi} x policy {local, global} x offloading
// degree {2, 3, 4} x perturbation {slowdown, link-degrade, crash} on the
// synthetic benchmark and reports, per combination, the time the
// allocation policy needed to re-converge the node imbalance after the
// injection and the goodput lost relative to the unperturbed run.
// Perturbations are injected at 35% of the clean makespan; the transient
// ones recover at 70%.
//
// The detector column compares the oracle loss-detection baseline (crash
// handling fires the instant the worker dies — free and impossible in a
// real system) against the phi-accrual heartbeat detector (tlb::resil):
// detection_latency_s is the crash-to-suspicion delay the heartbeat
// protocol pays, and false_positives counts healthy workers quarantined by
// the transient perturbations (link degradation delays heartbeats too —
// the classic accrual-detector failure mode). Both are "n/a"/0 under the
// oracle.
//
// Expected shape: the global policy with degree >= 3 re-converges within a
// few solver periods and loses the least goodput, while the local policy —
// which balances but trails the global one (Fig 7/11) — hovers above the
// 1.15 convergence threshold at this node count. Higher degrees give the
// rebalancer more helpers to shift work to; the contrast is starkest for
// the crash at degree 2, where the overloaded apprank loses its only
// helper and pays a ~30-45% makespan penalty. The phi detector adds a
// small constant detection latency (a few heartbeat periods) to the crash
// rows and trades it for realism; the lease protocol keeps every task
// exactly-once regardless.
#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/recovery.hpp"

namespace {

using namespace tlb;

constexpr int kNodes = 8;
constexpr int kCores = 16;

apps::SyntheticConfig workload_config() {
  apps::SyntheticConfig scfg;
  scfg.appranks = kNodes;
  scfg.iterations = bench::smoke() ? 4 : 16;
  scfg.tasks_per_rank = bench::smoke() ? 48 : 240;
  scfg.imbalance = 2.0;  // apprank 0 overloaded: its helpers carry work
  return scfg;
}

core::RuntimeConfig runtime_config(resil::DetectionMode detector,
                                   core::PolicyKind policy, int degree) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(kNodes, kCores);
  cfg.appranks_per_node = 1;
  cfg.degree = degree;
  cfg.policy = policy;
  cfg.resil.detection = detector;
  return cfg;
}

fault::FaultPlan make_plan(const std::string& kind, double inject, double recover,
                           const core::ClusterRuntime& rt) {
  fault::FaultPlan plan;
  if (kind == "slowdown") {
    plan.slow_node(/*node=*/1, 1.0 / 3.0, inject, recover);
  } else if (kind == "link-degrade") {
    plan.degrade_link(/*latency_mult=*/8.0, /*bandwidth_mult=*/0.25,
                      /*jitter_max=*/2e-5, inject, recover);
    plan.lose_messages(0.05, inject, recover);
  } else {  // crash: fail-stop, no recovery
    plan.crash_worker(rt.topology().workers_of_apprank(0)[1], inject);
  }
  return plan;
}

void run_combo(resil::DetectionMode detector, core::PolicyKind policy,
               int degree, const std::string& kind,
               bench::JsonReport& report) {
  const core::RuntimeConfig cfg = runtime_config(detector, policy, degree);

  apps::SyntheticWorkload wl_clean(workload_config());
  const auto clean = core::ClusterRuntime(cfg).run(wl_clean);

  apps::SyntheticWorkload wl(workload_config());
  core::ClusterRuntime rt(cfg);
  fault::FaultInjector injector(
      make_plan(kind, clean.makespan * 0.35, clean.makespan * 0.70, rt));
  metrics::RecoverySeries recovery;
  injector.attach(rt, &recovery);
  const auto r = rt.run(wl);

  std::vector<const trace::StepSeries*> node_busy;
  for (int n = 0; n < kNodes; ++n) {
    node_busy.push_back(&rt.recorder().node_busy(n));
  }
  // Iteration-sized bins so barrier drains do not read as imbalance; trim
  // the end-of-run drain from the analysis window.
  const auto reports = recovery.analyse(node_busy, 0.0, r.makespan * 0.95,
                                        /*bins=*/16, /*threshold=*/1.15,
                                        /*hold=*/2);
  const auto& first = reports.front();
  std::printf(
      "%s,%s,%d,%s,%.4f,%.4f,%.1f,%s,%.2f,%llu,%llu,%s,%llu\n",
      detector == resil::DetectionMode::Oracle ? "oracle" : "phi",
      core::to_string(policy), degree,
      kind.c_str(), clean.makespan, r.makespan,
      100.0 * (r.makespan / clean.makespan - 1.0),
      first.reconverge_time < 0.0
          ? "never"
          : tlb::bench::fmt(first.reconverge_time, 2).c_str(),
      first.goodput_lost, (unsigned long long)r.tasks_reexecuted,
      (unsigned long long)r.retransmissions,
      r.detections == 0 ? "n/a"
                        : tlb::bench::fmt(r.mean_detection_latency(), 4).c_str(),
      (unsigned long long)r.false_suspicions);

  const std::string series =
      std::string(detector == resil::DetectionMode::Oracle ? "oracle" : "phi") +
      "/" + std::string(core::to_string(policy));
  auto& pt = report.point(series)
                 .set("degree", degree)
                 .set("perturbation", kind)
                 .set("clean_makespan", clean.makespan)
                 .set("makespan", r.makespan)
                 .set("slowdown_pct", 100.0 * (r.makespan / clean.makespan - 1.0))
                 .set("reconverged", first.reconverge_time >= 0.0)
                 .set("goodput_lost_cs", first.goodput_lost)
                 .set("tasks_reexecuted", r.tasks_reexecuted)
                 .set("retransmissions", r.retransmissions)
                 .set("false_positives", r.false_suspicions);
  if (first.reconverge_time >= 0.0) {
    pt.set("reconverge_s", first.reconverge_time);
  }
  if (r.detections > 0) {
    pt.set("detection_latency_s", r.mean_detection_latency());
  }
}

}  // namespace

int main() {
  tlb::bench::JsonReport report(
      "fig12", "Recovery from mid-run perturbations");
  report.config()
      .set("nodes", kNodes)
      .set("cores_per_node", kCores)
      .set("inject_at_fraction", 0.35)
      .set("recover_at_fraction", 0.70);
  std::printf(
      "detector,policy,degree,perturbation,clean_makespan,makespan,"
      "slowdown_pct,reconverge_s,goodput_lost_cs,tasks_reexecuted,"
      "retransmissions,detection_latency_s,false_positives\n");
  const std::vector<int> degrees = tlb::bench::smoke()
                                       ? std::vector<int>{2}
                                       : std::vector<int>{2, 3, 4};
  for (const resil::DetectionMode detector :
       {resil::DetectionMode::Oracle, resil::DetectionMode::Heartbeat}) {
    for (const core::PolicyKind policy :
         {core::PolicyKind::Local, core::PolicyKind::Global}) {
      if (tlb::bench::smoke() && policy == core::PolicyKind::Local) continue;
      for (const int degree : degrees) {
        for (const char* kind : {"slowdown", "link-degrade", "crash"}) {
          run_combo(detector, policy, degree, kind, report);
        }
      }
    }
  }
  return 0;
}
