// Fig 10: synthetic benchmark with one EMULATED slow node (its rank's
// tasks take 3x longer wherever they run), one apprank per node,
// LeWI + DROM global policy. The x-axis sweeps the configured imbalance in
// both directions: "least" means the slow rank carries the minimum work,
// "most" means it carries the maximum. Expected shape (paper §7.5):
//   - 2 nodes: degree 2 is nearly flat and close to optimal across the
//     whole range;
//   - 8 nodes: flat when the slow node has the most work as long as the
//     degree is a little above the imbalance; degree 4 is the most
//     consistent and handles imbalance up to 4.
#include "apps/synthetic.hpp"
#include "bench/common.hpp"

namespace {

/// direction = 'most': slow rank is the worst-loaded rank;
/// direction = 'least': slow rank carries the least work.
tlb::apps::SyntheticConfig slow_config(int appranks, double imbalance,
                                       bool slow_has_most) {
  tlb::apps::SyntheticConfig cfg;
  cfg.appranks = appranks;
  cfg.iterations = tlb::bench::smoke() ? 1 : 3;
  cfg.tasks_per_rank = tlb::bench::smoke() ? 32 : 320;
  cfg.base_duration = 0.050;
  cfg.imbalance = imbalance;
  cfg.slow_rank = 0;
  cfg.slow_factor = 3.0;
  if (slow_has_most || appranks == 1) {
    cfg.worst_rank = 0;
  } else {
    cfg.worst_rank = appranks - 1;
    cfg.least_rank = 0;
  }
  return cfg;
}

void sweep(int nodes, const std::vector<int>& degrees,
           tlb::bench::JsonReport& report) {
  using namespace tlb::bench;
  std::vector<Series> series;
  series.push_back({"dlb(deg1)", 1, true, true, tlb::core::PolicyKind::Global});
  for (int d : degrees) {
    series.push_back({"degree " + std::to_string(d), d, true, true,
                      tlb::core::PolicyKind::Global});
  }
  std::vector<std::string> cols = {"imbalance"};
  for (const auto& s : series) cols.push_back(s.name);
  cols.push_back("perfect");
  print_header("Fig 10: synthetic, one emulated 3x-slow rank, " +
                   std::to_string(nodes) + " nodes [time per run, s]",
               cols);

  // Left side (slow rank least loaded) printed as negative imbalance.
  std::vector<std::pair<double, bool>> xs;
  for (double i : {4.0, 3.0, 2.0, 1.5}) {
    if (i <= nodes) xs.emplace_back(i, false);  // Eq. 2: imbalance <= ranks
  }
  xs.emplace_back(1.0, true);
  for (double i : {1.5, 2.0, 3.0, 4.0}) {
    if (i <= nodes) xs.emplace_back(i, true);
  }

  for (const auto& [imb, most] : xs) {
    print_cell(fmt(most ? imb : -imb, 1));
    double perfect = 0.0;
    for (const auto& s : series) {
      const auto cluster = tlb::sim::ClusterSpec::homogeneous(nodes, 16);
      if (!feasible(cluster, 1, s)) {
        print_cell(std::string("-"));
        continue;
      }
      auto cfg = make_config(cluster, 1, s);
      tlb::apps::SyntheticWorkload wl(slow_config(nodes, imb, most));
      tlb::core::ClusterRuntime rt(cfg);
      const auto r = rt.run(wl);
      print_cell(r.makespan);
      perfect = r.perfect_time;
      report.point(std::to_string(nodes) + " nodes / " + s.name)
          .set("signed_imbalance", most ? imb : -imb)
          .set("makespan", r.makespan)
          .set("perfect", r.perfect_time);
    }
    print_cell(perfect);
    end_row();
  }
}

}  // namespace

int main() {
  tlb::bench::JsonReport report(
      "fig10", "Synthetic with one emulated 3x-slow rank");
  report.config().set("cores_per_node", 16).set("slow_factor", 3.0);
  sweep(2, {2}, report);
  if (!tlb::bench::smoke()) sweep(8, {2, 3, 4}, report);
  return 0;
}
