// Fig 16 (extension): elastic capacity under a diurnal trace, with
// circuit-breaker tenant protection and a hot-swap control plane.
//
// The service scenario of fig15, three questions further:
//
//   1. *Elasticity.* The same recorded diurnal arrival trace (day/night
//      cycle) is replayed against a static cluster (every node powered
//      for the whole run) and an elastic one (an ElasticController powers
//      node slots up on sustained queue pressure and down when they idle,
//      with a provisioning delay; running jobs are never reclaimed). Cost
//      is billed in node-seconds. The claim: the elastic arm cuts
//      node-seconds substantially (>= 25%) at equal-or-better p99 —
//      trough capacity is returned, peak capacity is re-provisioned
//      before queues build.
//   2. *Tenant protection.* A "rogue" tenant with an impossible SLO
//      (every completion is a miss) shares the FCFS queue. Without
//      breakers its oversized jobs keep occupying partitions and inflate
//      everyone's tail; with per-tenant circuit breakers the rogue trips
//      open after K consecutive misses and its traffic is shed at the
//      door, keeping the other tenants' p99 bounded.
//   3. *Hot-swap control plane.* An xDS-style push of typed config
//      resources retunes admission and elastic bounds mid-run with
//      ACK/NACK discipline: a valid push ACKs and applies, an invalid one
//      NACKs and rolls back to the last acked resource, a stale version
//      is rejected without side effects.
//
// Determinism: the arrival trace is generated once, serialized to JSON
// lines, parsed back (bit-identical round-trip, asserted), and replayed
// via svc::ArrivalShape::Trace — every arm sees byte-identical traffic.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "svc/job_manager.hpp"

namespace {

using namespace tlb;

constexpr int kNodes = 8;
constexpr int kCores = 8;

std::vector<svc::JobTemplate> tenant_templates() {
  svc::JobTemplate interactive;
  interactive.name = "interactive";
  interactive.nodes = 2;
  interactive.appranks_per_node = 1;
  interactive.degree = 2;
  interactive.iterations = 2;
  interactive.tasks_per_rank = 32;
  interactive.base_duration = 0.020;
  interactive.imbalance = 1.5;
  interactive.deadline_class = 0;
  interactive.deadline = 2.0;
  interactive.weight = 4.0;

  svc::JobTemplate batch;
  batch.name = "batch";
  batch.nodes = 4;
  batch.appranks_per_node = 1;
  batch.degree = 2;
  batch.iterations = 4;
  batch.tasks_per_rank = 48;
  batch.base_duration = 0.025;
  batch.imbalance = 2.0;
  batch.deadline_class = 2;
  batch.deadline = 12.0;
  batch.weight = 1.0;
  return {interactive, batch};
}

/// The misbehaving tenant: partition-hungry, long-running, and carrying a
/// deadline it can never meet — every completion is an SLO miss, so the
/// breaker trips after `failure_threshold` of them.
svc::JobTemplate rogue_template() {
  svc::JobTemplate rogue;
  rogue.name = "rogue";
  rogue.nodes = 4;
  rogue.appranks_per_node = 1;
  rogue.degree = 2;
  rogue.iterations = 6;
  rogue.tasks_per_rank = 48;
  rogue.base_duration = 0.030;
  rogue.imbalance = 2.0;
  rogue.deadline_class = 1;
  rogue.deadline = 0.05;  // impossible: service alone far exceeds it
  rogue.weight = 1.5;
  return rogue;
}

core::RuntimeConfig base_config(std::vector<svc::JobTemplate> templates,
                                double horizon) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(kNodes, kCores);
  cfg.appranks_per_node = 1;  // overridden per job from the template
  cfg.policy = core::PolicyKind::Global;
  cfg.seed = 2024;
  cfg.record_traces = false;
  cfg.svc.enabled = true;
  cfg.svc.templates = std::move(templates);
  cfg.svc.arrivals.horizon = horizon;
  return cfg;
}

void tune_elastic(elastic::ElasticConfig& e) {
  e.enabled = true;
  // min_nodes = the largest partition any template asks for, so a queue
  // head always fits the baseline pool and never waits on provisioning —
  // scale-out only adds *concurrency*, which is what keeps the elastic
  // arm's tail equal to the static arm's.
  e.min_nodes = 4;
  e.max_nodes = kNodes;
  // With 2- and 4-node partitions on a 4..8 pool, busy/active only takes
  // the values {.25,.33,.5,.67,.75,1.0}: there is no "80% full" early
  // signal, so scale-out is always queue-driven and what matters is
  // *reaction time*. A fine eval period with a 2-tick sustain filters
  // sub-200ms blips yet reacts in ~0.2s + provision_delay.
  e.eval_period = 0.1;
  e.high_pressure = 0.95;
  e.low_pressure = 0.60;
  e.sustain_ticks = 2;
  e.idle_ticks = 8;
  e.cooldown = 0.25;
  e.step = 2;
  e.provision_delay = 0.2;
}

/// Partition-occupancy saturation rate from a lightly-loaded probe run.
double calibrate_saturation(double horizon) {
  core::RuntimeConfig cfg = base_config(tenant_templates(), horizon);
  cfg.svc.arrivals.shape = svc::ArrivalShape::Poisson;
  cfg.svc.arrivals.rate = 2.0;
  svc::JobManager probe(cfg);
  (void)probe.run();
  double node_seconds = 0.0;
  std::uint64_t completed = 0;
  for (const svc::JobRecord& rec : probe.jobs()) {
    if (rec.outcome != svc::JobOutcome::Completed) continue;
    const auto& tpl =
        cfg.svc.templates[static_cast<std::size_t>(rec.template_index)];
    node_seconds += tpl.nodes * rec.service();
    ++completed;
  }
  if (completed == 0 || node_seconds <= 0.0) return 4.0;  // defensive
  const double per_job = node_seconds / static_cast<double>(completed);
  std::printf(
      "calibration: %llu jobs, %.3f node-s/job => saturation ~%.2f jobs/s\n",
      static_cast<unsigned long long>(completed), per_job, kNodes / per_job);
  return kNodes / per_job;
}

/// Generates the diurnal trace, proves the JSONL round-trip is
/// bit-identical, and returns the parsed copy (the one every arm replays).
std::vector<svc::Arrival> recorded_trace(const std::vector<double>& weights,
                                         double rate, double horizon,
                                         double period, bool* roundtrip_ok) {
  svc::ArrivalConfig gen_cfg;
  gen_cfg.shape = svc::ArrivalShape::Diurnal;
  gen_cfg.rate = rate;
  gen_cfg.horizon = horizon;
  gen_cfg.diurnal_period = period;
  gen_cfg.diurnal_amplitude = 0.8;
  svc::ArrivalGenerator gen(gen_cfg, weights, /*seed=*/2024);
  const std::vector<svc::Arrival> original = gen.all();

  const std::string dump = svc::dump_arrivals_jsonl(original);
  const std::vector<svc::Arrival> parsed = svc::parse_arrivals_jsonl(dump);

  // Replay through a Trace-shaped generator as well: generator output,
  // dump/parse, and replay must all be the same bit-exact sequence.
  svc::ArrivalConfig replay_cfg;
  replay_cfg.shape = svc::ArrivalShape::Trace;
  replay_cfg.horizon = horizon;
  replay_cfg.trace = parsed;
  svc::ArrivalGenerator replay(replay_cfg, weights, /*seed=*/999);
  const std::vector<svc::Arrival> replayed = replay.all();

  bool ok = parsed.size() == original.size() &&
            replayed.size() == original.size();
  for (std::size_t i = 0; ok && i < original.size(); ++i) {
    ok = parsed[i].time == original[i].time &&
         parsed[i].template_index == original[i].template_index &&
         parsed[i].job_seed == original[i].job_seed &&
         replayed[i].time == original[i].time &&
         replayed[i].job_seed == original[i].job_seed;
  }
  *roundtrip_ok = ok;
  std::printf("trace: %zu arrivals, JSONL round-trip %s\n", original.size(),
              ok ? "bit-identical" : "MISMATCH");
  return parsed;
}

struct Arm {
  std::string name;
  svc::SvcResult res;
  std::vector<svc::SvcTenantRow> tenants;
};

Arm run_arm(const std::string& name, core::RuntimeConfig cfg) {
  svc::JobManager mgr(cfg);
  Arm arm;
  arm.name = name;
  arm.res = mgr.run();
  arm.tenants = arm.res.tenants;
  return arm;
}

void report_arm(bench::JsonReport& report, const std::string& series,
                const Arm& arm) {
  bench::JsonObject& p = report.point(series);
  const svc::SvcResult& r = arm.res;
  p.set("arrived", r.arrived)
      .set("completed", r.completed)
      .set("shed", r.shed)
      .set("shed_breaker", r.shed_breaker)
      .set("slo_met", r.slo_met)
      .set("goodput", r.goodput)
      .set("latency_p50_s", r.latency_p50)
      .set("latency_p99_s", r.latency_p99)
      .set("queue_wait_p99_s", r.queue_wait_p99)
      .set("cost_node_seconds", r.cost_node_seconds)
      .set("peak_nodes", r.peak_nodes)
      .set("scale_out_events", r.scale_out_events)
      .set("scale_in_events", r.scale_in_events)
      .set("breaker_trips", r.breaker_trips)
      .set("breaker_open_time_s", r.breaker_open_time_s)
      .set("elapsed_s", r.elapsed);
  for (const svc::SvcTenantRow& t : arm.tenants) {
    p.set(t.name + "_arrived", t.arrived)
        .set(t.name + "_completed", t.completed)
        .set(t.name + "_shed", t.shed)
        .set(t.name + "_p99_s", t.latency_p99)
        .set(t.name + "_slo_met", t.slo_met);
  }
}

/// Control-plane demonstration: valid pushes ACK and apply mid-run,
/// invalid ones NACK and roll back, stale versions bounce. Returns the
/// counters for the report.
void control_plane_demo(bench::JsonReport& report, double horizon,
                        const std::vector<svc::Arrival>& trace) {
  core::RuntimeConfig cfg = base_config(tenant_templates(), horizon);
  cfg.svc.arrivals.shape = svc::ArrivalShape::Trace;
  cfg.svc.arrivals.trace = trace;
  cfg.svc.admission.enabled = true;
  cfg.svc.admission.initial_limit = 6;
  cfg.svc.admission.max_limit = 12;
  tune_elastic(cfg.elastic);

  svc::JobManager mgr(cfg);
  std::vector<std::string> outcomes;
  mgr.engine().at(horizon * 0.3, [&] {
    // Valid retune: ACK, applied to the live controller.
    const auto r = mgr.control().push(
        {"tlb.svc.admission", 1, "initial_limit=8 max_limit=16"});
    outcomes.push_back(std::string("admission v1: ") + to_string(r.status));
    // Invalid retune: NACK, rolled back to v1.
    const auto bad = mgr.control().push(
        {"tlb.svc.admission", 2, "min_limit=0 max_limit=-3"});
    outcomes.push_back(std::string("admission v2 (invalid): ") +
                       to_string(bad.status) +
                       (bad.rolled_back ? " + rollback" : ""));
    // Stale version: bounced, applier never invoked.
    const auto stale = mgr.control().push(
        {"tlb.svc.admission", 1, "initial_limit=2"});
    outcomes.push_back(std::string("admission v1 replay: ") +
                       to_string(stale.status));
  });
  mgr.engine().at(horizon * 0.5, [&] {
    const auto r =
        mgr.control().push({"tlb.elastic.nodes", 1, "min=6 max=8"});
    outcomes.push_back(std::string("elastic v1: ") + to_string(r.status));
    const auto bad =
        mgr.control().push({"tlb.elastic.nodes", 2, "min=9 max=4"});
    outcomes.push_back(std::string("elastic v2 (invalid): ") +
                       to_string(bad.status) +
                       (bad.rolled_back ? " + rollback" : ""));
  });
  const svc::SvcResult r = mgr.run();

  std::printf("\n== Fig 16c: hot-swap control plane ==\n");
  for (const std::string& o : outcomes) std::printf("  %s\n", o.c_str());
  std::printf(
      "  pushes=%llu acks=%llu nacks=%llu rollbacks=%llu "
      "(completed %llu jobs under retuning)\n",
      static_cast<unsigned long long>(mgr.control().pushes()),
      static_cast<unsigned long long>(mgr.control().acks()),
      static_cast<unsigned long long>(mgr.control().nacks()),
      static_cast<unsigned long long>(mgr.control().rollbacks()),
      static_cast<unsigned long long>(r.completed));

  report.config()
      .set("xds_pushes", mgr.control().pushes())
      .set("xds_acks", mgr.control().acks())
      .set("xds_nacks", mgr.control().nacks())
      .set("xds_rollbacks", mgr.control().rollbacks());
}

}  // namespace

int main() {
  using namespace tlb::bench;
  const bool is_smoke = smoke();
  const double horizon = is_smoke ? 6.0 : 60.0;
  const double period = is_smoke ? 6.0 : 20.0;

  std::printf(
      "== Fig 16: elastic cluster on a diurnal trace ==\n"
      "(%d nodes x %d cores; recorded diurnal arrivals replayed against a\n"
      " static and an elastic cluster; node-seconds billed while powered;\n"
      " circuit breakers isolate a rogue tenant; xDS-style pushes retune\n"
      " the control plane mid-run)\n",
      kNodes, kCores);

  JsonReport report("fig16", "Elastic capacity, breakers, control plane");
  const double saturation = calibrate_saturation(is_smoke ? 4.0 : 10.0);
  // The occupancy bound ignores FCFS head-blocking and partition
  // fragmentation, so the practically sustainable rate is well below it;
  // 0.25x keeps the daily peak busy without tipping into collapse, which
  // is the regime where elasticity (not overload control) is the story.
  const double mean_rate = 0.25 * saturation;

  bool roundtrip_ok = false;
  const std::vector<double> two_weights = {4.0, 1.0};
  const std::vector<svc::Arrival> trace = recorded_trace(
      two_weights, mean_rate, horizon, period, &roundtrip_ok);

  report.config()
      .set("nodes", kNodes)
      .set("cores_per_node", kCores)
      .set("horizon_s", horizon)
      .set("diurnal_period_s", period)
      .set("saturation_rate", saturation)
      .set("mean_rate", mean_rate)
      .set("trace_arrivals", static_cast<std::uint64_t>(trace.size()))
      .set("trace_roundtrip_bit_identical", roundtrip_ok);

  // --- 16a: static vs elastic on the identical trace ------------------------
  core::RuntimeConfig static_cfg = base_config(tenant_templates(), horizon);
  static_cfg.svc.arrivals.shape = svc::ArrivalShape::Trace;
  static_cfg.svc.arrivals.trace = trace;
  core::RuntimeConfig elastic_cfg = static_cfg;
  tune_elastic(elastic_cfg.elastic);

  const Arm arm_static = run_arm("static", static_cfg);
  const Arm arm_elastic = run_arm("elastic", elastic_cfg);

  print_header("Fig 16a: static vs elastic (same diurnal trace)",
               {"arm", "done", "slo", "p99[s]", "node-s", "peak", "out",
                "in"});
  for (const Arm* arm : {&arm_static, &arm_elastic}) {
    print_cell(arm->name);
    print_cell(static_cast<int>(arm->res.completed));
    print_cell(static_cast<int>(arm->res.slo_met));
    print_cell(fmt(arm->res.latency_p99, 2));
    print_cell(fmt(arm->res.cost_node_seconds, 1));
    print_cell(arm->res.peak_nodes);
    print_cell(static_cast<int>(arm->res.scale_out_events));
    print_cell(static_cast<int>(arm->res.scale_in_events));
    end_row();
  }
  report_arm(report, "static", arm_static);
  report_arm(report, "elastic", arm_elastic);

  const double saving =
      arm_static.res.cost_node_seconds > 0.0
          ? 1.0 - arm_elastic.res.cost_node_seconds /
                      arm_static.res.cost_node_seconds
          : 0.0;
  // "Equal" p99 up to 2%: the arms run different free-node sets, so exact
  // float equality is not meaningful.
  const bool p99_ok =
      arm_elastic.res.latency_p99 <= arm_static.res.latency_p99 * 1.02;
  std::printf(
      "\nelastic verdict: node-seconds %.1f -> %.1f (saving %.0f%%), "
      "p99 %.2fs vs %.2fs => %s\n",
      arm_static.res.cost_node_seconds, arm_elastic.res.cost_node_seconds,
      100.0 * saving, arm_elastic.res.latency_p99,
      arm_static.res.latency_p99,
      (saving >= 0.25 && p99_ok)
          ? "elastic cuts cost >= 25% at equal-or-better p99"
          : "WARNING: elastic did not meet the cost/latency bar");
  report.config()
      .set("node_seconds_saving", saving)
      .set("elastic_meets_bar", saving >= 0.25 && p99_ok);

  // --- 16b: rogue tenant, breakers off vs on ---------------------------------
  std::vector<svc::JobTemplate> with_rogue = tenant_templates();
  with_rogue.push_back(rogue_template());
  std::vector<double> three_weights;
  for (const auto& t : with_rogue) three_weights.push_back(t.weight);
  // Hotter operating point for the protection story: the innocent share
  // stays healthy on its own, and the rogue's oversized jobs are what tip
  // the open queue into collapse.
  const double rogue_rate = 0.4 * saturation;
  bool rogue_roundtrip = false;
  const std::vector<svc::Arrival> rogue_trace =
      recorded_trace(three_weights, rogue_rate, horizon, period,
                     &rogue_roundtrip);

  core::RuntimeConfig rogue_cfg = base_config(with_rogue, horizon);
  rogue_cfg.svc.arrivals.shape = svc::ArrivalShape::Trace;
  rogue_cfg.svc.arrivals.trace = rogue_trace;
  core::RuntimeConfig breaker_cfg = rogue_cfg;
  breaker_cfg.svc.breaker.enabled = true;
  breaker_cfg.svc.breaker.failure_threshold = 3;
  breaker_cfg.svc.breaker.open_duration = is_smoke ? 1.0 : 4.0;
  breaker_cfg.svc.breaker.backoff_factor = 2.0;
  breaker_cfg.svc.breaker.max_open_duration = is_smoke ? 4.0 : 16.0;

  const Arm arm_open = run_arm("breaker off", rogue_cfg);
  const Arm arm_breaker = run_arm("breaker on", breaker_cfg);

  print_header("Fig 16b: rogue tenant x circuit breakers",
               {"arm", "tenant", "arrived", "done", "shed", "p99[s]",
                "trips"});
  for (const Arm* arm : {&arm_open, &arm_breaker}) {
    for (const svc::SvcTenantRow& t : arm->tenants) {
      print_cell(arm->name);
      print_cell(t.name);
      print_cell(static_cast<int>(t.arrived));
      print_cell(static_cast<int>(t.completed));
      print_cell(static_cast<int>(t.shed));
      print_cell(fmt(t.latency_p99, 2));
      print_cell(static_cast<int>(t.breaker_trips));
      end_row();
    }
  }
  report_arm(report, "breaker off", arm_open);
  report_arm(report, "breaker on", arm_breaker);

  const double open_p99 = arm_open.tenants[0].latency_p99;
  const double protected_p99 = arm_breaker.tenants[0].latency_p99;
  std::printf(
      "\nbreaker verdict: interactive p99 %.2fs (open queue) vs %.2fs "
      "(breakers, %llu breaker sheds) => %s\n",
      open_p99, protected_p99,
      static_cast<unsigned long long>(arm_breaker.res.shed_breaker),
      protected_p99 < open_p99
          ? "breakers bound the innocent tenants' tail"
          : (is_smoke
                 // The 6 s smoke horizon is too short for the rogue to
                 // accumulate failure_threshold misses; the full run is
                 // what enforces the protection claim.
                 ? "smoke horizon too short to trip (informational)"
                 : "WARNING: breakers did not improve the protected tail"));
  report.config().set("breaker_protects_tail",
                      is_smoke || protected_p99 < open_p99);

  // --- 16c: hot-swap control plane -------------------------------------------
  control_plane_demo(report, horizon, trace);
  return 0;
}
