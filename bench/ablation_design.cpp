// Ablation of the design choices DESIGN.md calls out, on a fixed scenario
// (8 nodes x 16 cores, synthetic imbalance 2.0, degree 4, global policy):
//   - the two-tasks-per-owned-core scheduler threshold (§5.5);
//   - the borrowed-core friction that caps LeWI efficiency (§5.5/§7.4);
//   - busy-estimate smoothing for the DROM policies (stability fix);
//   - the global solver period (paper: 2 s);
//   - partitioned vs monolithic global solves (§5.4.2) — solved-quality
//     comparison on a static problem.
#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "sim/rng.hpp"
#include "solver/partitioned.hpp"

namespace {

using namespace tlb;
using namespace tlb::bench;

core::RunResult run_one(
    const std::function<void(core::RuntimeConfig&)>& tweak) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(8, 16);
  cfg.appranks_per_node = 1;
  cfg.degree = 4;
  cfg.policy = core::PolicyKind::Global;
  tweak(cfg);
  apps::SyntheticConfig scfg;
  scfg.appranks = 8;
  scfg.iterations = 6;
  scfg.tasks_per_rank = 320;
  scfg.imbalance = 2.0;
  apps::SyntheticWorkload wl(scfg);
  core::ClusterRuntime rt(cfg);
  return rt.run(wl);
}

void row(const char* name, const core::RunResult& r) {
  std::printf("%-34s %10.3f %12.2f %11.1f%%\n", name, r.makespan,
              r.vs_perfect(), 100.0 * r.offload_fraction());
}

}  // namespace

int main() {
  std::printf("== Ablation: 8 nodes, synthetic imbalance 2.0, degree 4 ==\n");
  std::printf("%-34s %10s %12s %12s\n", "variant", "time [s]", "vs perfect",
              "offloaded");

  row("default", run_one([](auto&) {}));
  row("inflight threshold 1/core",
      run_one([](auto& c) { c.inflight_per_core = 1; }));
  row("inflight threshold 4/core",
      run_one([](auto& c) { c.inflight_per_core = 4; }));
  row("no borrowed-core friction",
      run_one([](auto& c) { c.borrowed_core_overhead = 0.0; }));
  row("3x borrowed-core friction",
      run_one([](auto& c) { c.borrowed_core_overhead = 0.060; }));
  row("no busy smoothing",
      run_one([](auto& c) { c.busy_smoothing = 0.0; }));
  row("heavy busy smoothing (0.9)",
      run_one([](auto& c) { c.busy_smoothing = 0.9; }));
  row("solver period 0.5 s",
      run_one([](auto& c) { c.global_period = 0.5; }));
  row("solver period 8 s",
      run_one([](auto& c) { c.global_period = 8.0; }));
  row("modelled solver latency 57 ms",
      run_one([](auto& c) { c.solver_latency = 0.057; }));
  row("no LeWI (DROM only)", run_one([](auto& c) { c.lewi = false; }));
  row("local policy", run_one([](auto& c) {
        c.policy = tlb::core::PolicyKind::Local;
      }));

  // Partitioned solver quality on a static 64-node problem (§5.4.2).
  std::printf("\n== Partitioned global solve, 64 nodes x 48 cores, degree 4 ==\n");
  const auto ex = graph::build_expander(
      {.nodes = 64, .appranks_per_node = 2, .degree = 4, .seed = 21});
  sim::Rng rng(13);
  solver::AllocationProblem p;
  p.graph = &ex.graph;
  p.node_cores.assign(64, 48);
  for (int a = 0; a < ex.graph.left_count(); ++a) {
    p.work.push_back(rng.uniform(0.0, 60.0));
  }
  const auto direct = solver::solve_allocation(p);
  std::printf("%-24s objective %.4f\n", "monolithic", direct.objective);
  for (int group : {32, 16, 8}) {
    const auto part = solver::solve_allocation_partitioned(p, 2, group);
    std::printf("%-14s groups=%2d objective %.4f (+%.1f%%)\n", "partitioned",
                part.groups, part.objective,
                100.0 * (part.objective / direct.objective - 1.0));
  }
  return 0;
}
