// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper: it runs the
// relevant cluster configurations through the simulator and prints the
// same series the paper plots (execution time vs nodes / imbalance /
// policy). Absolute times are simulated seconds on the modelled machines
// (MareNostrum 4: 48-core nodes; Nord3: 16-core nodes), so the *shapes*
// — who wins, by what factor, where crossovers fall — are the result.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "prof/prof.hpp"

namespace tlb::bench {

/// True when TLB_PROF is set (and not "0"): the bench enables the host
/// self-profiler (tlb::prof) and every JsonReport gains a "prof" block
/// plus a tlb_prof_<figure>.collapsed host-flamegraph artifact.
inline bool prof_requested() {
  const char* e = std::getenv("TLB_PROF");
  return e != nullptr && e[0] != '\0' && std::string(e) != "0";
}

/// Peak resident set of this process in MB (Linux: getrusage; hoisted
/// out of fig17 so every fig bench emits it). 0 on unsupported platforms.
inline double peak_rss_mb() { return prof::peak_rss_mb(); }

/// Current resident set in MB (/proc/self/status VmRSS; 0 elsewhere).
inline double current_rss_mb() { return prof::current_rss_mb(); }

/// Paper machine models.
inline sim::ClusterSpec marenostrum4(int nodes) {
  return sim::ClusterSpec::homogeneous(nodes, 48);
}
inline sim::ClusterSpec nord3(int nodes, bool one_slow_node) {
  // Nord3: 2x 8-core sockets; the slow node runs at 1.8 GHz vs 3.0 GHz.
  return one_slow_node
             ? sim::ClusterSpec::with_slow_node(nodes, 16, 0, 1.8 / 3.0)
             : sim::ClusterSpec::homogeneous(nodes, 16);
}

/// Named configuration for a series in a figure.
struct Series {
  std::string name;
  int degree = 1;
  bool lewi = true;
  bool drom = true;
  core::PolicyKind policy = core::PolicyKind::Global;
};

/// The standard series the application figures sweep: no DLB baseline,
/// single-node DLB (degree 1), then increasing offloading degree.
inline std::vector<Series> paper_series(core::PolicyKind policy,
                                        const std::vector<int>& degrees) {
  std::vector<Series> out;
  out.push_back({"baseline", 1, false, false, core::PolicyKind::None});
  out.push_back({"dlb(deg1)", 1, true, true, policy});
  for (int d : degrees) {
    out.push_back({"degree " + std::to_string(d), d, true, true, policy});
  }
  return out;
}

inline core::RuntimeConfig make_config(sim::ClusterSpec cluster, int per_node,
                                       const Series& s) {
  core::RuntimeConfig cfg;
  cfg.cluster = std::move(cluster);
  cfg.appranks_per_node = per_node;
  cfg.degree = s.degree;
  cfg.lewi = s.lewi;
  cfg.drom = s.drom;
  cfg.policy = s.policy;
  // TLB_PROF=1 profiles every bench: runtimes register their telemetry
  // gauge and the engine loop samples health snapshots. Record-only —
  // the measured schedules are bit-identical either way.
  cfg.prof.enabled = prof_requested();
  return cfg;
}

/// True when the series fits on the nodes (enough cores for one per
/// worker; degree cannot exceed the node count).
inline bool feasible(const sim::ClusterSpec& cluster, int per_node,
                     const Series& s) {
  if (s.degree > cluster.node_count()) return false;
  const int workers_per_node = per_node * s.degree;
  for (const auto& n : cluster.nodes) {
    if (workers_per_node > n.cores) return false;
  }
  return true;
}

// --- table printing -----------------------------------------------------------

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------");
  std::printf("\n");
}

inline void print_cell(const std::string& v) { std::printf("%14s", v.c_str()); }
inline void print_cell(double v) { std::printf("%14.3f", v); }
inline void print_cell(int v) { std::printf("%14d", v); }
inline void end_row() { std::printf("\n"); }

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

// --- machine-readable output --------------------------------------------------

/// True when TLB_BENCH_SMOKE is set (and not "0"): benches shrink their
/// sweeps to tiny sizes so CI can execute every figure in seconds. The
/// numbers are meaningless for the paper shapes — the run only proves the
/// binaries execute and the JSON reports stay well-formed.
inline bool smoke() {
  const char* e = std::getenv("TLB_BENCH_SMOKE");
  return e != nullptr && e[0] != '\0' && std::string(e) != "0";
}

/// Directory to drop execution traces into (Chrome trace JSON, Paraver
/// .prv/.row/.pcf), or null when TLB_TRACE_OUTPUT_DIR is unset: trace
/// emission is opt-in because the files are large.
inline const char* trace_output_dir() {
  const char* e = std::getenv("TLB_TRACE_OUTPUT_DIR");
  return (e != nullptr && e[0] != '\0') ? e : nullptr;
}

inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("[trace] wrote %s\n", path.c_str());
  return true;
}

/// One flat JSON object built key by key; insertion order is preserved.
/// Values are rendered immediately, so the object holds only strings.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double v) {
    char buf[64];
    if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "%.12g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    kv_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& set(const std::string& key, int v) {
    kv_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& set(const std::string& key, std::uint64_t v) {
    kv_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& set(const std::string& key, bool v) {
    kv_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  JsonObject& set(const std::string& key, const std::string& v) {
    kv_.emplace_back(key, quote(v));
    return *this;
  }
  JsonObject& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  /// Inserts pre-rendered JSON verbatim (nested objects — e.g. the
  /// obs::Registry serialization). The caller guarantees validity.
  JsonObject& set_raw(const std::string& key, const std::string& json) {
    kv_.emplace_back(key, json);
    return *this;
  }

  [[nodiscard]] std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      if (i > 0) out += ", ";
      out += quote(kv_[i].first) + ": " + kv_[i].second;
    }
    return out + "}";
  }

  [[nodiscard]] static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Collects the numbers behind one figure and writes them to
/// BENCH_<figure>.json — alongside, not instead of, the human tables — so
/// CI can archive every figure as a machine-readable artifact. Shape:
///
///   { "figure": "fig08", "title": "...", "smoke": false,
///     "config": { ... },
///     "series": [ {"name": "degree 4", "points": [{...}, ...]}, ... ],
///     "wall_ms": 123.4 }
///
/// Points are flat objects (one per measured combination). The file lands
/// in the current directory unless TLB_BENCH_OUTPUT_DIR is set. write()
/// is idempotent; the destructor writes if nobody did.
class JsonReport {
 public:
  JsonReport(std::string figure, std::string title)
      : figure_(std::move(figure)),
        title_(std::move(title)),
        start_(std::chrono::steady_clock::now()) {
    if (prof_requested()) {
      // Fresh measurement window per bench binary: the report's "prof"
      // block then covers exactly this figure's runs.
      prof::Profiler::instance().enable();
      prof::Profiler::instance().reset();
    }
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() {
    if (!written_) write();
  }

  /// Figure-level parameters (node counts, payload sizes, ...).
  JsonObject& config() { return config_; }

  /// Appends a point to `series` (created on first use, order preserved)
  /// and returns it for chained set() calls.
  JsonObject& point(const std::string& series) {
    for (auto& s : series_) {
      if (s.first == series) {
        s.second.emplace_back();
        return s.second.back();
      }
    }
    series_.emplace_back(series, std::vector<JsonObject>(1));
    return series_.back().second.back();
  }

  bool write() {
    written_ = true;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::string out = "{\n";
    out += "  \"figure\": " + JsonObject::quote(figure_) + ",\n";
    out += "  \"title\": " + JsonObject::quote(title_) + ",\n";
    out += std::string("  \"smoke\": ") + (smoke() ? "true" : "false") + ",\n";
    out += "  \"config\": " + config_.render() + ",\n";
    out += "  \"series\": [\n";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      out += "    {\"name\": " + JsonObject::quote(series_[i].first) +
             ", \"points\": [\n";
      const auto& pts = series_[i].second;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        out += "      " + pts[j].render();
        out += j + 1 < pts.size() ? ",\n" : "\n";
      }
      out += i + 1 < series_.size() ? "    ]},\n" : "    ]}\n";
    }
    out += "  ],\n";
    // Every figure report carries the process peak RSS so memory is
    // trend-tracked across all benches, not just fig17's scale arm.
    char rss[64];
    std::snprintf(rss, sizeof(rss), "%.1f", peak_rss_mb());
    out += std::string("  \"peak_rss_mb\": ") + rss + ",\n";
    if (prof::enabled()) {
      out += "  \"prof\": " + prof::Profiler::instance().to_json() + ",\n";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", wall_ms);
    out += std::string("  \"wall_ms\": ") + buf + "\n}\n";

    std::string dir;
    if (const char* d = std::getenv("TLB_BENCH_OUTPUT_DIR")) {
      if (d[0] != '\0') dir = std::string(d) + "/";
    }
    const std::string path = dir + "BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("[json] wrote %s\n", path.c_str());
    if (prof::enabled()) {
      // Host wall-time flamegraph input (flamegraph.pl-compatible), the
      // host-side counterpart of the obs flame export over sim time.
      write_text_file(dir + "tlb_prof_" + figure_ + ".collapsed",
                      prof::Profiler::instance().collapsed_stacks());
    }
    return true;
  }

 private:
  std::string figure_;
  std::string title_;
  std::chrono::steady_clock::time_point start_;
  JsonObject config_;
  std::vector<std::pair<std::string, std::vector<JsonObject>>> series_;
  bool written_ = false;
};

}  // namespace tlb::bench
