// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper: it runs the
// relevant cluster configurations through the simulator and prints the
// same series the paper plots (execution time vs nodes / imbalance /
// policy). Absolute times are simulated seconds on the modelled machines
// (MareNostrum 4: 48-core nodes; Nord3: 16-core nodes), so the *shapes*
// — who wins, by what factor, where crossovers fall — are the result.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace tlb::bench {

/// Paper machine models.
inline sim::ClusterSpec marenostrum4(int nodes) {
  return sim::ClusterSpec::homogeneous(nodes, 48);
}
inline sim::ClusterSpec nord3(int nodes, bool one_slow_node) {
  // Nord3: 2x 8-core sockets; the slow node runs at 1.8 GHz vs 3.0 GHz.
  return one_slow_node
             ? sim::ClusterSpec::with_slow_node(nodes, 16, 0, 1.8 / 3.0)
             : sim::ClusterSpec::homogeneous(nodes, 16);
}

/// Named configuration for a series in a figure.
struct Series {
  std::string name;
  int degree = 1;
  bool lewi = true;
  bool drom = true;
  core::PolicyKind policy = core::PolicyKind::Global;
};

/// The standard series the application figures sweep: no DLB baseline,
/// single-node DLB (degree 1), then increasing offloading degree.
inline std::vector<Series> paper_series(core::PolicyKind policy,
                                        const std::vector<int>& degrees) {
  std::vector<Series> out;
  out.push_back({"baseline", 1, false, false, core::PolicyKind::None});
  out.push_back({"dlb(deg1)", 1, true, true, policy});
  for (int d : degrees) {
    out.push_back({"degree " + std::to_string(d), d, true, true, policy});
  }
  return out;
}

inline core::RuntimeConfig make_config(sim::ClusterSpec cluster, int per_node,
                                       const Series& s) {
  core::RuntimeConfig cfg;
  cfg.cluster = std::move(cluster);
  cfg.appranks_per_node = per_node;
  cfg.degree = s.degree;
  cfg.lewi = s.lewi;
  cfg.drom = s.drom;
  cfg.policy = s.policy;
  return cfg;
}

/// True when the series fits on the nodes (enough cores for one per
/// worker; degree cannot exceed the node count).
inline bool feasible(const sim::ClusterSpec& cluster, int per_node,
                     const Series& s) {
  if (s.degree > cluster.node_count()) return false;
  const int workers_per_node = per_node * s.degree;
  for (const auto& n : cluster.nodes) {
    if (workers_per_node > n.cores) return false;
  }
  return true;
}

// --- table printing -----------------------------------------------------------

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------");
  std::printf("\n");
}

inline void print_cell(const std::string& v) { std::printf("%14s", v.c_str()); }
inline void print_cell(double v) { std::printf("%14.3f", v); }
inline void print_cell(int v) { std::printf("%14d", v); }
inline void end_row() { std::printf("\n"); }

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace tlb::bench
