// Fig 15 (extension): open-loop service traffic and overload control.
//
// Every other figure measures one batch execution by makespan. Here the
// cluster is a *service*: app instances arrive continuously from a seeded
// open-loop process (tlb::svc), queue for node partitions, and run as full
// ClusterRuntime executions multiplexed on one simulated clock. The
// question is what happens as the offered load crosses the capacity of
// the cluster:
//
//   - admission off: every arrival is queued. Below saturation the queue
//     is short and goodput tracks the offered load; beyond it the backlog
//     (and thus latency) grows without bound over the horizon, deadlines
//     blow through, and goodput *collapses* — classic congestion collapse
//     of an open-loop system.
//   - admission on (Envoy-style overload control: token bucket, gradient
//     concurrency limit, retry budget, shed-by-deadline-class): excess
//     arrivals are shed early, the queue stays bounded, and goodput holds
//     near capacity with a bounded latency tail — graceful degradation.
//
// Sweep: offered load in multiples of the measured saturation rate, with
// admission off/on per point. The saturation rate is calibrated from a
// lightly-loaded probe run: rate* = nodes / E[node-seconds per job]
// (partition-occupancy bound). Two tenant templates share the cluster —
// a latency-sensitive "interactive" class (small partitions, tight SLO)
// and a "batch" class (bigger partitions, loose SLO) that admission sheds
// first. Deterministic: one seed fixes the arrival sequence, and the
// sequence is independent of the admission decisions by construction, so
// both arms of a point see byte-identical offered traffic.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "svc/job_manager.hpp"

namespace {

using namespace tlb;

constexpr int kNodes = 8;
constexpr int kCores = 8;

std::vector<svc::JobTemplate> tenant_templates() {
  svc::JobTemplate interactive;
  interactive.name = "interactive";
  interactive.nodes = 2;
  interactive.appranks_per_node = 1;
  interactive.degree = 2;
  interactive.iterations = 2;
  interactive.tasks_per_rank = 32;
  interactive.base_duration = 0.020;
  interactive.imbalance = 1.5;
  interactive.deadline_class = 0;
  interactive.deadline = 1.5;
  interactive.weight = 4.0;

  svc::JobTemplate batch;
  batch.name = "batch";
  batch.nodes = 4;
  batch.appranks_per_node = 1;
  batch.degree = 2;
  batch.iterations = 4;
  batch.tasks_per_rank = 48;
  batch.base_duration = 0.025;
  batch.imbalance = 2.0;
  batch.deadline_class = 2;
  batch.deadline = 10.0;
  batch.weight = 1.0;
  return {interactive, batch};
}

core::RuntimeConfig base_config(double rate, double horizon, bool admission) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(kNodes, kCores);
  cfg.appranks_per_node = 1;  // overridden per job from the template
  cfg.policy = core::PolicyKind::Global;
  cfg.seed = 2024;
  cfg.record_traces = false;
  cfg.svc.enabled = true;
  cfg.svc.templates = tenant_templates();
  cfg.svc.arrivals.shape = svc::ArrivalShape::Poisson;
  cfg.svc.arrivals.rate = rate;
  cfg.svc.arrivals.horizon = horizon;
  cfg.svc.fabric_pressure = 0.02;
  cfg.svc.admission.enabled = admission;
  return cfg;
}

/// Envoy-style knobs, scaled to the calibrated saturation rate.
void tune_admission(svc::AdmissionConfig& adm, double saturation_rate) {
  adm.bucket_rate = 2.0 * saturation_rate;  // only extreme bursts hit it
  adm.bucket_burst = 16.0;
  adm.initial_limit = 6;
  adm.min_limit = 2;
  adm.max_limit = 12;
  adm.tolerance = 2.5;
  adm.update_window = 8;
  adm.class_fractions = {1.0, 0.85, 0.6};
  adm.retry_backoff = 0.3;
  adm.retry_max = 2;
}

/// Partition-occupancy saturation rate from a lightly-loaded probe run:
/// jobs/s the cluster sustains when every node-second is spent serving.
double calibrate_saturation(double horizon) {
  core::RuntimeConfig cfg = base_config(/*rate=*/2.0, horizon,
                                        /*admission=*/false);
  svc::JobManager probe(cfg);
  const svc::SvcResult r = probe.run();
  double node_seconds = 0.0;
  std::uint64_t completed = 0;
  for (const svc::JobRecord& rec : probe.jobs()) {
    if (rec.outcome != svc::JobOutcome::Completed) continue;
    const auto& tpl = cfg.svc.templates[static_cast<std::size_t>(
        rec.template_index)];
    node_seconds += tpl.nodes * rec.service();
    ++completed;
  }
  if (completed == 0 || node_seconds <= 0.0) return 4.0;  // defensive
  const double per_job = node_seconds / static_cast<double>(completed);
  std::printf(
      "calibration: %llu jobs, %.3f node-s/job => saturation ~%.2f jobs/s\n",
      static_cast<unsigned long long>(completed), per_job,
      kNodes / per_job);
  (void)r;
  return kNodes / per_job;
}

struct ArmResult {
  svc::SvcResult res;
  double rate = 0.0;
};

ArmResult run_arm(double rate, double horizon, bool admission,
                  double saturation) {
  core::RuntimeConfig cfg = base_config(rate, horizon, admission);
  if (admission) tune_admission(cfg.svc.admission, saturation);
  svc::JobManager mgr(cfg);
  ArmResult out;
  out.res = mgr.run();
  out.rate = rate;
  return out;
}

void report_point(bench::JsonReport& report, const std::string& series,
                  double multiplier, const ArmResult& arm) {
  const svc::SvcResult& r = arm.res;
  bench::JsonObject& p = report.point(series);
  p.set("load_multiplier", multiplier)
      .set("offered_rate", arm.rate)
      .set("arrived", r.arrived)
      .set("admitted", r.admitted)
      .set("completed", r.completed)
      .set("shed", r.shed)
      .set("retries", r.retries)
      .set("slo_met", r.slo_met)
      .set("goodput", r.goodput)
      .set("goodput_norm", arm.rate > 0.0 ? r.goodput / arm.rate : 0.0)
      .set("shed_rate", r.shed_rate)
      .set("latency_p50_s", r.latency_p50)
      .set("latency_p99_s", r.latency_p99)
      .set("queue_wait_p99_s", r.queue_wait_p99)
      .set("service_mean_s", r.service_mean)
      .set("final_limit", r.final_limit)
      .set("elapsed_s", r.elapsed);
  for (const svc::SvcClassRow& c : r.classes) {
    const std::string k = "class" + std::to_string(c.deadline_class);
    p.set(k + "_arrived", c.arrived)
        .set(k + "_slo_met", c.slo_met)
        .set(k + "_shed", c.shed);
  }
}

}  // namespace

int main() {
  using namespace tlb::bench;
  const bool is_smoke = smoke();
  const double horizon = is_smoke ? 4.0 : 30.0;
  const double calib_horizon = is_smoke ? 4.0 : 10.0;
  const std::vector<double> multipliers =
      is_smoke ? std::vector<double>{0.8, 1.5}
               : std::vector<double>{0.5, 0.8, 1.0, 1.2, 1.5, 2.0};

  std::printf(
      "== Fig 15: open-loop service traffic x admission control ==\n"
      "(%d nodes x %d cores; interactive (2-node, SLO 1.5s) + batch\n"
      " (4-node, SLO 10s) tenants, Poisson arrivals over %.0fs; admission =\n"
      " token bucket + gradient concurrency limit + retry budget + shed by\n"
      " deadline class)\n",
      kNodes, kCores, horizon);

  JsonReport report("fig15", "Service traffic: overload and admission control");
  const double saturation = calibrate_saturation(calib_horizon);
  report.config()
      .set("nodes", kNodes)
      .set("cores_per_node", kCores)
      .set("horizon_s", horizon)
      .set("saturation_rate", saturation)
      .set("arrival_shape", "poisson")
      .set("fabric_pressure", 0.02)
      .set("templates", "interactive(2n,slo1.5s,w4) batch(4n,slo10s,w1)");

  print_header("Fig 15: offered load sweep",
               {"load", "arm", "arrived", "done", "shed", "goodput", "g/rate",
                "p50[s]", "p99[s]", "limit"});

  bool graceful = true;
  for (double m : multipliers) {
    const double rate = m * saturation;
    const ArmResult off = run_arm(rate, horizon, false, saturation);
    const ArmResult on = run_arm(rate, horizon, true, saturation);
    for (const auto* arm : {&off, &on}) {
      const bool is_on = arm == &on;
      print_cell(fmt(m, 2));
      print_cell(is_on ? "adm-on" : "adm-off");
      print_cell(static_cast<int>(arm->res.arrived));
      print_cell(static_cast<int>(arm->res.completed));
      print_cell(static_cast<int>(arm->res.shed));
      print_cell(fmt(arm->res.goodput, 2));
      print_cell(fmt(arm->rate > 0.0 ? arm->res.goodput / arm->rate : 0.0, 2));
      print_cell(fmt(arm->res.latency_p50, 2));
      print_cell(fmt(arm->res.latency_p99, 2));
      print_cell(arm->res.final_limit);
      end_row();
    }
    report_point(report, "admission off", m, off);
    report_point(report, "admission on", m, on);
    if (m >= 1.2 && on.res.goodput <= off.res.goodput) graceful = false;
  }

  // The headline claim: past saturation, overload control must beat the
  // open queue on goodput (shed early instead of missing every deadline).
  std::printf("\noverload verdict: %s\n",
              graceful ? "graceful degradation (admission-on goodput holds "
                         "above the collapsing baseline)"
                       : "WARNING: admission-on did not beat the baseline "
                         "past saturation");

  if (!is_smoke) {
    // One bursty demonstration at nominal saturation: the MMPP bursts
    // push instantaneous load far past capacity even though the mean is
    // exactly rate*, so the admission arm sheds during bursts while the
    // open queue accumulates them.
    print_header("Fig 15b: bursty arrivals at 1.0x saturation",
                 {"shape", "arm", "arrived", "done", "shed", "goodput",
                  "p99[s]"});
    for (const bool admission : {false, true}) {
      core::RuntimeConfig cfg = base_config(saturation, horizon, admission);
      cfg.svc.arrivals.shape = tlb::svc::ArrivalShape::Bursty;
      if (admission) tune_admission(cfg.svc.admission, saturation);
      tlb::svc::JobManager mgr(cfg);
      const tlb::svc::SvcResult r = mgr.run();
      print_cell("bursty");
      print_cell(admission ? "adm-on" : "adm-off");
      print_cell(static_cast<int>(r.arrived));
      print_cell(static_cast<int>(r.completed));
      print_cell(static_cast<int>(r.shed));
      print_cell(fmt(r.goodput, 2));
      print_cell(fmt(r.latency_p99, 2));
      end_row();
      ArmResult arm;
      arm.res = r;
      arm.rate = saturation;
      report_point(report, admission ? "bursty admission on"
                                     : "bursty admission off",
                   1.0, arm);
    }
  }
  return 0;
}
