// Fig 7: Alya MicroPP weak scaling with the LOCAL convergence policy.
// Expected shape (paper §7.2): similar to the global policy on few nodes
// (about 43% below DLB at 4 nodes), but ~10% worse than global at 32
// nodes, and more sensitive to the offloading degree (time rises again
// for degree > 4).
#include "bench/micropp_figure.hpp"

int main() {
  using namespace tlb::bench;
  run_micropp_weak_scaling(
      tlb::core::PolicyKind::Local, /*appranks_per_node=*/1,
      {2, 4, 8, 16, 32},
      "Fig 7(a): MicroPP, local policy, 1 apprank/node [exec time, s]",
      "fig07a");
  run_micropp_weak_scaling(
      tlb::core::PolicyKind::Local, /*appranks_per_node=*/2,
      {2, 4, 8, 16, 32},
      "Fig 7(b): MicroPP, local policy, 2 appranks/node [exec time, s]",
      "fig07b");
  return 0;
}
