// Fig 8: execution time of the synthetic benchmark as a function of the
// configured imbalance (Equation 2), one apprank per node, LeWI + DROM
// with the global policy. Expected shape (paper §7.3):
//   - degree 4 gives consistently good results across imbalance 1.0-4.0;
//   - on few nodes, a degree >= the imbalance suffices (degree 2 holds to
//     imbalance 2.0, degree 3 to 3.0);
//   - on 64 nodes graph connectivity matters: degree 4 is the dependable
//     choice, within ~10-20% of the perfect bound for imbalance <= 2.
#include "apps/synthetic.hpp"
#include "bench/common.hpp"

namespace {

tlb::apps::SyntheticConfig synthetic_config(int appranks, double imbalance) {
  tlb::apps::SyntheticConfig cfg;
  cfg.appranks = appranks;
  cfg.iterations = tlb::bench::smoke() ? 2 : 6;
  // Paper: 100 tasks/core of ~50 ms; scaled to 20/core on 16-core nodes
  // so the 64-node sweep simulates in seconds.
  cfg.tasks_per_rank = tlb::bench::smoke() ? 32 : 320;
  cfg.base_duration = 0.050;
  cfg.imbalance = imbalance;
  return cfg;
}

void sweep(int nodes, const std::vector<int>& degrees,
           tlb::bench::JsonReport& report) {
  using namespace tlb::bench;
  std::vector<Series> series;
  series.push_back({"dlb(deg1)", 1, true, true, tlb::core::PolicyKind::Global});
  for (int d : degrees) {
    series.push_back({"degree " + std::to_string(d), d, true, true,
                      tlb::core::PolicyKind::Global});
  }

  std::vector<std::string> cols = {"imbalance"};
  for (const auto& s : series) cols.push_back(s.name);
  cols.push_back("perfect");
  print_header("Fig 8: synthetic on " + std::to_string(nodes) +
                   " nodes (16 cores/node), time per run [s]",
               cols);

  std::vector<double> imbalances = {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  if (smoke()) imbalances = {1.0, 2.0};
  for (double imb : imbalances) {
    print_cell(fmt(imb, 1));
    double perfect = 0.0;
    for (const auto& s : series) {
      const auto cluster = tlb::sim::ClusterSpec::homogeneous(nodes, 16);
      if (!feasible(cluster, 1, s)) {
        print_cell(std::string("-"));
        continue;
      }
      auto cfg = make_config(cluster, 1, s);
      cfg.solver_latency = 0.057 * (nodes / 32.0) * (nodes / 32.0);
      tlb::apps::SyntheticWorkload wl(synthetic_config(nodes, imb));
      tlb::core::ClusterRuntime rt(cfg);
      const auto r = rt.run(wl);
      print_cell(r.makespan);
      perfect = r.perfect_time;
      report.point(std::to_string(nodes) + " nodes / " + s.name)
          .set("imbalance", imb)
          .set("makespan", r.makespan)
          .set("perfect", r.perfect_time);
    }
    print_cell(perfect);
    end_row();
  }
}

}  // namespace

int main() {
  tlb::bench::JsonReport report(
      "fig08", "Synthetic benchmark: execution time vs configured imbalance");
  report.config().set("cores_per_node", 16).set("policy", "global");
  sweep(4, {2, 3, 4}, report);
  if (!tlb::bench::smoke()) {
    sweep(16, {2, 3, 4, 8}, report);
    sweep(64, {2, 4, 8}, report);
  }
  return 0;
}
