// Component micro-benchmarks (google-benchmark):
//   - the global allocation solve (paper §5.4.2 reports ~57 ms for 32
//     nodes with CVXOPT and roughly quadratic growth; our native
//     bisection+flow solver is orders of magnitude faster, which is why
//     the modelled solver latency is configurable);
//   - expander construction and screening;
//   - task dependency registration throughput;
//   - the real application kernels (hex8 stiffness, Barnes-Hut force).
#include <benchmark/benchmark.h>

#include "apps/micropp/hex8.hpp"
#include "apps/nbody/octree.hpp"
#include "graph/expander.hpp"
#include "nanos/dependency_graph.hpp"
#include "sim/rng.hpp"
#include "solver/allocation.hpp"

namespace {

using namespace tlb;

void BM_ExpanderBuild(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = graph::build_expander({.nodes = nodes,
                                    .appranks_per_node = 2,
                                    .degree = 4,
                                    .seed = seed++});
    benchmark::DoNotOptimize(r.expansion);
  }
}
BENCHMARK(BM_ExpanderBuild)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_VertexExpansionScreening(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const auto r = graph::build_expander(
      {.nodes = nodes, .appranks_per_node = 1, .degree = 4, .seed = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::vertex_expansion(r.graph));
  }
}
BENCHMARK(BM_VertexExpansionScreening)->Arg(16)->Arg(32);

void BM_AllocationSolver(benchmark::State& state) {
  // The paper's 32-node solve takes ~57 ms in CVXOPT; this measures the
  // native equivalent on the same problem shape (2 appranks/node,
  // degree 4, 48 cores).
  const int nodes = static_cast<int>(state.range(0));
  const auto ex = graph::build_expander(
      {.nodes = nodes, .appranks_per_node = 2, .degree = 4, .seed = 5});
  sim::Rng rng(7);
  solver::AllocationProblem p;
  p.graph = &ex.graph;
  p.node_cores.assign(static_cast<std::size_t>(nodes), 48);
  for (int a = 0; a < ex.graph.left_count(); ++a) {
    p.work.push_back(rng.uniform(0.0, 48.0));
  }
  for (auto _ : state) {
    auto r = solver::solve_allocation(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_AllocationSolver)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DependencyRegistration(benchmark::State& state) {
  // Chains of InOut tasks over disjoint blocks: the common app pattern.
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    nanos::TaskPool pool;
    nanos::DependencyGraph graph(pool);
    for (int i = 0; i < tasks; ++i) {
      const auto id = pool.create(
          0, 1.0,
          {nanos::AccessRegion{static_cast<std::uint64_t>(i % 64) * 4096,
                               4096, nanos::AccessMode::InOut}});
      benchmark::DoNotOptimize(graph.register_task(id));
    }
    state.counters["tasks/s"] = benchmark::Counter(
        static_cast<double>(tasks), benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_DependencyRegistration)->Arg(1024)->Arg(8192);

void BM_Hex8Stiffness(benchmark::State& state) {
  const auto coords = apps::micropp::unit_cube_coords(1.0);
  const auto c = apps::micropp::elastic_matrix({});
  for (auto _ : state) {
    auto ke = apps::micropp::Hex8::stiffness(coords, c);
    benchmark::DoNotOptimize(ke[0][0]);
  }
}
BENCHMARK(BM_Hex8Stiffness);

void BM_OctreeForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(11);
  std::vector<apps::nbody::Body> bodies(static_cast<std::size_t>(n));
  for (auto& b : bodies) {
    b.position = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    b.mass = 1.0 / n;
  }
  const apps::nbody::Octree tree(bodies);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto fr = tree.acceleration(bodies[i++ % bodies.size()], 0.5);
    benchmark::DoNotOptimize(fr.interactions);
  }
}
BENCHMARK(BM_OctreeForce)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
