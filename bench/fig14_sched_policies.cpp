// Fig 14 (extension): scheduler policy x imbalance x oversubscription.
//
// Fig 13 showed the *cost* of congestion-blind offloading; this figure
// asks whether the scheduler can buy the cost back. Sweep the three
// tlb::sched policies (locality = the paper's §5.5 rule, congestion =
// link-load + per-helper FCT feedback, waittime = Samfass-style offload
// throttling on observed task waits) over imbalance {1.5, 2.5} and
// fat-tree oversubscription {1:1, 4:1} on the same 16-node machine and
// heavy-payload synthetic workload as Fig 13.
//
// Reported per combination: makespan and its delta vs the locality
// baseline, the policy's steered/suppressed offload counters, the flow
// completion-time p99 and peak leaf-uplink utilization (did steering
// actually relieve the hot links?), and the offloaded-work fraction.
//
// Expected shape: the congestion policy wins where there is headroom to
// steer into — large on the 1:1 tree at moderate imbalance (NIC hotspots
// are avoidable) and a few percent on the hardest 4:1 x high-imbalance
// corner, where its saturation veto keeps offload inputs off pinned
// uplinks; in between, steering on a saturated single-spine tree has
// nowhere better to go and roughly recovers locality. waittime shaves a
// consistent few percent everywhere by suppressing speculative offloads
// whose transfer cost buys no queueing relief. All runs are deterministic
// (fixed seed, no RNG in fabric or policies).
#include <cinttypes>

#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "dlb/report.hpp"

namespace {

using namespace tlb;

constexpr int kNodes = 16;
constexpr int kCores = 16;
constexpr int kDegree = 4;
// Narrow NICs (200 MB/s) so streaming a 4 MiB task input is commensurable
// with the ~20 ms tasks (see fig13).
constexpr double kNicBandwidth = 2e8;
constexpr std::uint64_t kPayload = 4u << 20;

apps::SyntheticConfig workload_config(double imbalance) {
  apps::SyntheticConfig cfg;
  cfg.appranks = kNodes;
  cfg.iterations = bench::smoke() ? 2 : 4;
  cfg.tasks_per_rank = 96;
  cfg.base_duration = 0.020;
  cfg.imbalance = imbalance;
  cfg.bytes_per_task = kPayload;
  return cfg;
}

core::RuntimeConfig runtime_config(const std::string& policy,
                                   int oversubscription) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(kNodes, kCores);
  cfg.cluster.link.bandwidth = kNicBandwidth;
  cfg.appranks_per_node = 1;
  cfg.degree = kDegree;
  cfg.policy = core::PolicyKind::Global;
  cfg.net.enabled = true;
  cfg.net.topology = net::TopologyKind::FatTree;
  cfg.net.leaf_radix = 4;
  cfg.net.spines = 1;
  // leaf_radix NICs share one uplink: uplink = radix * nic / oversub.
  cfg.net.uplink_bandwidth =
      cfg.net.leaf_radix * kNicBandwidth / oversubscription;
  cfg.sched.policy = policy;
  return cfg;
}

void sweep(double imbalance, int oversubscription, bench::JsonReport& report,
           bool print_sched_report) {
  using namespace tlb::bench;
  char title[128];
  std::snprintf(title, sizeof(title),
                "Fig 14: policies, imbalance %.1f, %d:1 fat-tree", imbalance,
                oversubscription);
  print_header(title, {"policy", "makespan[s]", "vs locality%", "steered",
                       "suppressed", "fct_p99[ms]", "uplink_peak",
                       "offload%"});

  double locality_makespan = 0.0;
  std::string sched_report;
  for (const std::string policy : {"locality", "congestion", "waittime"}) {
    apps::SyntheticWorkload wl(workload_config(imbalance));
    core::ClusterRuntime rt(runtime_config(policy, oversubscription));
    const auto r = rt.run(wl);
    if (policy == "locality") locality_makespan = r.makespan;
    const double delta = 100.0 * (r.makespan / locality_makespan - 1.0);

    const net::Fabric* fabric = rt.fabric();
    double uplink_peak = 0.0;
    for (net::LinkId l : fabric->topology().leaf_uplinks()) {
      uplink_peak = std::max(uplink_peak, fabric->peak_utilization(l));
    }
    const double p99 = fabric->fct_quantile(0.99);

    print_cell(policy);
    print_cell(r.makespan);
    print_cell(fmt(delta, 1));
    print_cell(static_cast<int>(r.sched.offloads_steered));
    print_cell(static_cast<int>(r.sched.offloads_suppressed));
    print_cell(1e3 * p99);
    print_cell(fmt(uplink_peak, 2));
    print_cell(fmt(100.0 * r.offload_fraction(), 1));
    end_row();

    char series[64];
    std::snprintf(series, sizeof(series), "imbalance %.1f, %d:1", imbalance,
                  oversubscription);
    report.point(series)
        .set("policy", policy)
        .set("imbalance", imbalance)
        .set("oversubscription", oversubscription)
        .set("makespan", r.makespan)
        .set("vs_locality_pct", delta)
        .set("offloads_considered", r.sched.offloads_considered)
        .set("offloads_steered", r.sched.offloads_steered)
        .set("offloads_suppressed", r.sched.offloads_suppressed)
        .set("fct_p99_s", p99)
        .set("uplink_peak_utilization", uplink_peak)
        .set("transfer_bytes", r.transfer_bytes)
        .set("offload_fraction", r.offload_fraction());

    if (print_sched_report && policy == "congestion") {
      sched_report = dlb::sched_report(r.sched_policy, r.sched);
    }
  }
  if (!sched_report.empty()) std::printf("\n%s", sched_report.c_str());
}

}  // namespace

int main() {
  std::printf(
      "== Fig 14: scheduler policies x imbalance x oversubscription ==\n"
      "(synthetic, %d nodes x %d cores, degree %d, %d MiB/task, global\n"
      " policy; two-level fat-tree, %.0f MB/s NICs; policies: locality =\n"
      " paper §5.5, congestion = link-load + FCT feedback, waittime =\n"
      " offload throttling on observed waits)\n",
      kNodes, kCores, kDegree, static_cast<int>(kPayload >> 20),
      kNicBandwidth / 1e6);

  tlb::bench::JsonReport report(
      "fig14", "Scheduler policies under congestion and imbalance");
  report.config()
      .set("nodes", kNodes)
      .set("cores_per_node", kCores)
      .set("degree", kDegree)
      .set("payload_bytes", kPayload)
      .set("nic_bandwidth", kNicBandwidth)
      .set("leaf_radix", 4)
      .set("spines", 1)
      .set("policy", "global");

  const std::vector<double> imbalances =
      tlb::bench::smoke() ? std::vector<double>{2.5}
                          : std::vector<double>{1.5, 2.5};
  const std::vector<int> oversubscriptions =
      tlb::bench::smoke() ? std::vector<int>{4} : std::vector<int>{1, 4};
  for (double imb : imbalances) {
    for (int oversub : oversubscriptions) {
      // The congestion counters are most interesting on the hardest
      // configuration; print the full sched report there.
      const bool last = imb == imbalances.back() &&
                        oversub == oversubscriptions.back();
      sweep(imb, oversub, report, last);
    }
  }
  return 0;
}
