// Fig 14 (extension): scheduler policy x imbalance x oversubscription,
// plus a node-count scaling arm for the hierarchical scheduler.
//
// Fig 13 showed the *cost* of congestion-blind offloading; this figure
// asks whether the scheduler can buy the cost back. Sweep the five
// policies (locality = the paper's §5.5 rule, congestion = link-load +
// per-helper FCT feedback, waittime = Samfass-style offload throttling on
// observed task waits, adaptive = online portfolio selection among the
// three with hysteresis, hier = two-level scheduling over per-node load
// summaries) over imbalance {1.5, 2.5} and fat-tree oversubscription
// {1:1, 4:1} on the same 16-node machine and heavy-payload synthetic
// workload as Fig 13.
//
// Reported per combination: makespan and its delta vs the locality
// baseline, the policy's steered/suppressed offload counters, the
// adaptive portfolio's mode-switch count, the deterministic scheduling
// cost (state probes per decision — the O(cores) global state flat
// policies walk vs the O(1) summary reads of hier), the flow
// completion-time p99 and peak leaf-uplink utilization.
//
// Expected shape: no fixed policy wins every corner (that is the point);
// the adaptive portfolio probes each mode for one barrier-paced window,
// elects the measured-fastest and exploits it, so its acceptance bar is
// *regret*: lowest mean regret against the per-corner best policy, and
// outright wins where the best mode is reachable from a warm start. (A
// probe cannot always reach a mode's distant equilibrium — waittime's
// suppress->low-waits->suppress fixed point is invisible to a short
// probe that inherits warm high-wait estimates — so per-corner
// domination is not achievable by any online selector.) hier trades a
// little placement quality for a per-decision cost that stays flat as
// the cluster grows — the scaling arm at the end measures exactly that
// (state probes per decision and wall-clock decisions/s for locality vs
// hier as nodes double). All simulated results are deterministic (fixed
// seed, no RNG in fabric or policies); only the wall-clock decisions/s
// column varies between hosts.
#include <chrono>
#include <cinttypes>

#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "dlb/report.hpp"

namespace {

using namespace tlb;

constexpr int kNodes = 16;
constexpr int kCores = 16;
constexpr int kDegree = 4;
// Narrow NICs (200 MB/s) so streaming a 4 MiB task input is commensurable
// with the ~20 ms tasks (see fig13).
constexpr double kNicBandwidth = 2e8;
constexpr std::uint64_t kPayload = 4u << 20;

const char* const kPolicies[] = {"locality", "congestion", "waittime",
                                 "adaptive", "hier"};

apps::SyntheticConfig workload_config(double imbalance, int appranks) {
  apps::SyntheticConfig cfg;
  cfg.appranks = appranks;
  // Enough iterations that an online-adaptive policy has a horizon: the
  // portfolio spends the first three probing (one barrier-paced window
  // per mode) and exploits the elected mode for the rest.
  cfg.iterations = bench::smoke() ? 8 : 16;
  cfg.tasks_per_rank = 96;
  cfg.base_duration = 0.020;
  cfg.imbalance = imbalance;
  cfg.bytes_per_task = kPayload;
  return cfg;
}

core::RuntimeConfig runtime_config(const std::string& policy,
                                   int oversubscription, int nodes) {
  // "hier(no-res)" = the two-level scheduler with the residency
  // tie-break disabled — the pre-residency balancer, kept as a scaling
  // ablation (fig 14b) to show what the signal buys at 32-64 nodes.
  const bool hier_no_residency = policy == "hier(no-res)";
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(nodes, kCores);
  cfg.cluster.link.bandwidth = kNicBandwidth;
  cfg.appranks_per_node = 1;
  cfg.degree = kDegree;
  cfg.policy = core::PolicyKind::Global;
  cfg.net.enabled = true;
  cfg.net.topology = net::TopologyKind::FatTree;
  cfg.net.leaf_radix = 4;
  cfg.net.spines = 1;
  // leaf_radix NICs share one uplink: uplink = radix * nic / oversub.
  cfg.net.uplink_bandwidth =
      cfg.net.leaf_radix * kNicBandwidth / oversubscription;
  if (hier_no_residency) {
    cfg.sched.policy = "hier";
    cfg.hier.residency_band = 0.0;
  } else {
    cfg.sched.policy = policy;  // "hier" resolves to the two-level scheduler
  }
  return cfg;
}

void sweep(double imbalance, int oversubscription, bench::JsonReport& report,
           bool print_sched_report) {
  using namespace tlb::bench;
  char title[128];
  std::snprintf(title, sizeof(title),
                "Fig 14: policies, imbalance %.1f, %d:1 fat-tree", imbalance,
                oversubscription);
  print_header(title, {"policy", "makespan[s]", "vs locality%", "steered",
                       "suppressed", "switches", "probes/dec", "fct_p99[ms]",
                       "uplink_peak"});

  double locality_makespan = 0.0;
  std::string sched_report;
  for (const std::string policy : kPolicies) {
    apps::SyntheticWorkload wl(workload_config(imbalance, kNodes));
    core::ClusterRuntime rt(runtime_config(policy, oversubscription, kNodes));
    const auto r = rt.run(wl);
    if (policy == "locality") locality_makespan = r.makespan;
    const double delta = 100.0 * (r.makespan / locality_makespan - 1.0);
    const double probes_per_decision =
        r.sched.decisions > 0
            ? static_cast<double>(r.sched.state_touched) /
                  static_cast<double>(r.sched.decisions)
            : 0.0;

    const net::Fabric* fabric = rt.fabric();
    double uplink_peak = 0.0;
    for (net::LinkId l : fabric->topology().leaf_uplinks()) {
      uplink_peak = std::max(uplink_peak, fabric->peak_utilization(l));
    }
    const double p99 = fabric->fct_quantile(0.99);

    print_cell(policy);
    print_cell(r.makespan);
    print_cell(fmt(delta, 1));
    print_cell(static_cast<int>(r.sched.offloads_steered));
    print_cell(static_cast<int>(r.sched.offloads_suppressed));
    print_cell(static_cast<int>(r.sched.switches));
    print_cell(fmt(probes_per_decision, 1));
    print_cell(1e3 * p99);
    print_cell(fmt(uplink_peak, 2));
    end_row();

    char series[64];
    std::snprintf(series, sizeof(series), "imbalance %.1f, %d:1", imbalance,
                  oversubscription);
    report.point(series)
        .set("policy", policy)
        .set("imbalance", imbalance)
        .set("oversubscription", oversubscription)
        .set("makespan", r.makespan)
        .set("vs_locality_pct", delta)
        .set("offloads_considered", r.sched.offloads_considered)
        .set("offloads_steered", r.sched.offloads_steered)
        .set("offloads_suppressed", r.sched.offloads_suppressed)
        .set("sched_switches", r.sched.switches)
        .set("state_touched", r.sched.state_touched)
        .set("state_per_decision", probes_per_decision)
        .set("fct_p99_s", p99)
        .set("uplink_peak_utilization", uplink_peak)
        .set("transfer_bytes", r.transfer_bytes)
        .set("offload_fraction", r.offload_fraction());

    if (print_sched_report && policy == "adaptive") {
      sched_report = dlb::sched_report(r.sched_policy, r.sched);
    }
  }
  if (!sched_report.empty()) std::printf("\n%s", sched_report.c_str());
}

// Scaling arm: does per-decision scheduling cost stay bounded as the
// cluster grows? Flat policies pay the in-flight throttle's owned-core
// registry walk per candidate (grows with cores); hier reads O(degree)
// compact summaries and amortizes the walk over the summary period. The
// state-probe counter is deterministic; decisions/s of wall time is the
// host-dependent sanity check of the same claim.
void scaling_arm(bench::JsonReport& report) {
  using namespace tlb::bench;
  print_header("Fig 14b: scheduling cost vs node count (imbalance 2.5, 4:1)",
               {"nodes", "policy", "makespan[s]", "probes/dec",
                "decisions/s", "summary_refresh"});

  const std::vector<int> node_counts = bench::smoke()
                                           ? std::vector<int>{8, 16}
                                           : std::vector<int>{8, 16, 32, 64};
  for (const int nodes : node_counts) {
    for (const std::string policy : {"locality", "hier", "hier(no-res)"}) {
      apps::SyntheticWorkload wl(workload_config(2.5, nodes));
      core::ClusterRuntime rt(runtime_config(policy, 4, nodes));
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = rt.run(wl);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double probes_per_decision =
          r.sched.decisions > 0
              ? static_cast<double>(r.sched.state_touched) /
                    static_cast<double>(r.sched.decisions)
              : 0.0;
      const double decisions_per_sec =
          wall > 0.0 ? static_cast<double>(r.sched.decisions) / wall : 0.0;
      const obs::Counter* refresh_counter =
          rt.metrics().find_counter("hier.summary_refreshes");
      const double refreshes =
          refresh_counter != nullptr
              ? static_cast<double>(refresh_counter->value())
              : 0.0;

      print_cell(nodes);
      print_cell(policy);
      print_cell(r.makespan);
      print_cell(fmt(probes_per_decision, 1));
      print_cell(fmt(decisions_per_sec, 0));
      print_cell(static_cast<int>(refreshes));
      end_row();

      report.point("scaling")
          .set("policy", policy)
          .set("nodes", nodes)
          .set("makespan", r.makespan)
          .set("decisions", r.sched.decisions)
          .set("state_touched", r.sched.state_touched)
          .set("state_per_decision", probes_per_decision)
          .set("decisions_per_sec", decisions_per_sec)
          .set("summary_refreshes", refreshes);
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "== Fig 14: scheduler policies x imbalance x oversubscription ==\n"
      "(synthetic, %d nodes x %d cores, degree %d, %d MiB/task, global\n"
      " policy; two-level fat-tree, %.0f MB/s NICs; policies: locality =\n"
      " paper §5.5, congestion = link-load + FCT feedback, waittime =\n"
      " offload throttling on observed waits, adaptive = online portfolio\n"
      " over the three, hier = two-level scheduling over node summaries)\n",
      kNodes, kCores, kDegree, static_cast<int>(kPayload >> 20),
      kNicBandwidth / 1e6);

  tlb::bench::JsonReport report(
      "fig14", "Scheduler policies under congestion and imbalance");
  report.config()
      .set("nodes", kNodes)
      .set("cores_per_node", kCores)
      .set("degree", kDegree)
      .set("payload_bytes", kPayload)
      .set("nic_bandwidth", kNicBandwidth)
      .set("leaf_radix", 4)
      .set("spines", 1)
      .set("policy", "global");

  const std::vector<double> imbalances =
      tlb::bench::smoke() ? std::vector<double>{2.5}
                          : std::vector<double>{1.5, 2.5};
  const std::vector<int> oversubscriptions =
      tlb::bench::smoke() ? std::vector<int>{4} : std::vector<int>{1, 4};
  for (double imb : imbalances) {
    for (int oversub : oversubscriptions) {
      // The portfolio counters are most interesting on the hardest
      // configuration; print the full sched report there.
      const bool last = imb == imbalances.back() &&
                        oversub == oversubscriptions.back();
      sweep(imb, oversub, report, last);
    }
  }
  scaling_arm(report);
  return 0;
}
